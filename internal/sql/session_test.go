package sql

import (
	"math"
	"strings"
	"testing"

	"madlib/internal/engine"
)

func TestPlanCacheReuseAndTiming(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `CREATE TABLE t (g bigint, v float);
		INSERT INTO t VALUES (1, 10), (1, 30), (2, 5)`)
	const q = `SELECT g, avg(v) FROM t GROUP BY g`
	r := mustQuery(t, s, q)
	if s.LastTiming().CacheHit {
		t.Fatal("first execution must not be a cache hit")
	}
	if len(r.Rows) != 2 || r.Rows[0][1] != 20.0 {
		t.Fatalf("rows = %v", r.Rows)
	}
	r = mustQuery(t, s, q)
	tm := s.LastTiming()
	if !tm.CacheHit {
		t.Fatal("second execution should hit the plan cache")
	}
	if tm.Parse != 0 || tm.Plan != 0 {
		t.Fatalf("cached execution should have zero parse/plan time, got %+v", tm)
	}
	if len(r.Rows) != 2 || r.Rows[1][1] != 5.0 {
		t.Fatalf("cached rows = %v", r.Rows)
	}
	// Exec (not just Query) uses the cache too.
	rs := mustExec(t, s, q)
	if !s.LastTiming().CacheHit || len(rs[0].Rows) != 2 {
		t.Fatalf("Exec cache hit = %v", s.LastTiming())
	}
}

func TestPlanCacheSeesNewRows(t *testing.T) {
	// A cached plan must read current table contents, not a snapshot.
	s := newSession(t)
	mustExec(t, s, `CREATE TABLE t (v float); INSERT INTO t VALUES (1)`)
	const q = `SELECT sum(v) FROM t`
	if r := mustQuery(t, s, q); r.Rows[0][0] != 1.0 {
		t.Fatalf("sum = %v", r.Rows[0][0])
	}
	mustExec(t, s, `INSERT INTO t VALUES (41)`)
	if r := mustQuery(t, s, q); r.Rows[0][0] != 42.0 {
		t.Fatalf("sum after insert = %v", r.Rows[0][0])
	}
}

func TestPlanCacheInvalidationOnRecreate(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `CREATE TABLE t (g text, v float);
		INSERT INTO t VALUES ('a', 1), ('b', 2)`)
	const q = `SELECT count(*), sum(v) FROM t`
	if r := mustQuery(t, s, q); r.Rows[0][0] != int64(2) || r.Rows[0][1] != 3.0 {
		t.Fatalf("rows = %v", r.Rows)
	}
	if r := mustQuery(t, s, q); !s.LastTiming().CacheHit || r.Rows[0][0] != int64(2) {
		t.Fatal("expected cached execution")
	}
	// DROP + re-CREATE with a different schema: the cached plan is stale
	// and must not run (v is now the first column and a bigint).
	mustExec(t, s, `DROP TABLE t`)
	mustExec(t, s, `CREATE TABLE t (v bigint, w bigint);
		INSERT INTO t VALUES (10, 100), (20, 200), (30, 300)`)
	r := mustQuery(t, s, q)
	if s.LastTiming().CacheHit {
		t.Fatal("stale plan must not be reused after re-CREATE")
	}
	if r.Rows[0][0] != int64(3) || r.Rows[0][1] != int64(60) {
		t.Fatalf("post-recreate rows = %v", r.Rows)
	}
	// A dropped column in the new schema turns the query into an error,
	// not a stale execution.
	mustExec(t, s, `DROP TABLE t; CREATE TABLE t (w bigint)`)
	if _, err := s.Query(q); err == nil || !strings.Contains(err.Error(), "no such column") {
		t.Fatalf("stale column: %v", err)
	}
	// Dropping the table entirely errors cleanly.
	mustExec(t, s, `DROP TABLE t`)
	if _, err := s.Query(q); err == nil || !strings.Contains(err.Error(), "no such table") {
		t.Fatalf("dropped table: %v", err)
	}
}

func TestPlanStalenessAcrossSessions(t *testing.T) {
	// DDL through a different session over the same engine must still be
	// caught: validity is checked against the catalog, not session state.
	db := engine.Open(2)
	s1, s2 := NewSession(db), NewSession(db)
	mustExec(t, s1, `CREATE TABLE t (v float); INSERT INTO t VALUES (1), (2)`)
	const q = `SELECT sum(v) FROM t`
	if r := mustQuery(t, s1, q); r.Rows[0][0] != 3.0 {
		t.Fatalf("sum = %v", r.Rows[0][0])
	}
	mustExec(t, s2, `DROP TABLE t; CREATE TABLE t (v float); INSERT INTO t VALUES (7)`)
	r := mustQuery(t, s1, q) // s1's cache was not invalidated, but revalidates
	if r.Rows[0][0] != 7.0 {
		t.Fatalf("cross-session sum = %v", r.Rows[0][0])
	}
}

func TestPrepareExecute(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `CREATE TABLE t (g text, v float);
		INSERT INTO t VALUES ('a', 1), ('a', 3), ('b', 10), ('b', 30)`)
	mustExec(t, s, `PREPARE by_g AS SELECT g, sum(v) FROM t WHERE v > $1 GROUP BY g ORDER BY g`)
	r := mustQuery(t, s, `EXECUTE by_g(0)`)
	if len(r.Rows) != 2 || r.Rows[0][1] != 4.0 || r.Rows[1][1] != 40.0 {
		t.Fatalf("execute rows = %v", r.Rows)
	}
	// Different parameter value, same plan.
	r = mustQuery(t, s, `EXECUTE by_g(5)`)
	if len(r.Rows) != 1 || r.Rows[0][0] != "b" {
		t.Fatalf("execute(5) rows = %v", r.Rows)
	}
	if !s.LastTiming().CacheHit {
		t.Fatal("EXECUTE should reuse the prepared plan")
	}
	// Parameters thread into INSERT.
	mustExec(t, s, `PREPARE add_row AS INSERT INTO t VALUES ($1, $2)`)
	mustExec(t, s, `EXECUTE add_row('c', 99)`)
	r = mustQuery(t, s, `SELECT v FROM t WHERE g = 'c'`)
	if len(r.Rows) != 1 || r.Rows[0][0] != 99.0 {
		t.Fatalf("inserted via execute = %v", r.Rows)
	}
	// Listings.
	ps := s.PreparedStatements()
	if len(ps) != 2 || ps[0].Name != "add_row" || ps[0].NumParams != 2 ||
		ps[1].Name != "by_g" || ps[1].NumParams != 1 {
		t.Fatalf("prepared list = %+v", ps)
	}
	if !strings.Contains(ps[1].Text, "WHERE v > $1") {
		t.Fatalf("prepared text = %q", ps[1].Text)
	}
	// DEALLOCATE removes one; ALL removes the rest.
	mustExec(t, s, `DEALLOCATE by_g`)
	if _, err := s.Exec(`EXECUTE by_g(1)`); err == nil ||
		!strings.Contains(err.Error(), "does not exist") {
		t.Fatalf("deallocated execute: %v", err)
	}
	mustExec(t, s, `DEALLOCATE ALL`)
	if len(s.PreparedStatements()) != 0 {
		t.Fatal("DEALLOCATE ALL left prepared statements behind")
	}
}

func TestPrepareExecuteErrors(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `CREATE TABLE t (v float); INSERT INTO t VALUES (1), (2)`)
	mustExec(t, s, `PREPARE p AS SELECT count(*) FROM t WHERE v > $1`)
	// Wrong arity, both directions.
	if _, err := s.Exec(`EXECUTE p`); err == nil ||
		!strings.Contains(err.Error(), "want 1, got 0") {
		t.Fatalf("zero args: %v", err)
	}
	if _, err := s.Exec(`EXECUTE p(1, 2)`); err == nil ||
		!strings.Contains(err.Error(), "want 1, got 2") {
		t.Fatalf("two args: %v", err)
	}
	// Wrong type surfaces as a clean comparison error.
	if _, err := s.Exec(`EXECUTE p('abc')`); err == nil ||
		!strings.Contains(err.Error(), "cannot compare") {
		t.Fatalf("type error: %v", err)
	}
	// Unknown name, duplicate PREPARE, bare $n outside PREPARE.
	if _, err := s.Exec(`EXECUTE nope(1)`); err == nil ||
		!strings.Contains(err.Error(), "does not exist") {
		t.Fatalf("unknown prepared: %v", err)
	}
	if _, err := s.Exec(`PREPARE p AS SELECT 1`); err == nil ||
		!strings.Contains(err.Error(), "already exists") {
		t.Fatalf("duplicate prepare: %v", err)
	}
	if _, err := s.Exec(`SELECT v FROM t WHERE v > $1`); err == nil ||
		!strings.Contains(err.Error(), "PREPARE") {
		t.Fatalf("bare parameter: %v", err)
	}
	// PREPARE only covers SELECT/INSERT.
	if _, err := s.Exec(`PREPARE ddl AS DROP TABLE t`); err == nil ||
		!strings.Contains(err.Error(), "only SELECT and INSERT") {
		t.Fatalf("prepare DDL: %v", err)
	}
	// EXECUTE arguments must be constants.
	if _, err := s.Exec(`EXECUTE p(v)`); err == nil ||
		!strings.Contains(err.Error(), "parameter $1") {
		t.Fatalf("column ref argument: %v", err)
	}
}

func TestPrepareReplansAfterRecreate(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `CREATE TABLE t (v float); INSERT INTO t VALUES (1), (2), (3)`)
	mustExec(t, s, `PREPARE cnt AS SELECT count(*) FROM t WHERE v > $1`)
	if r := mustQuery(t, s, `EXECUTE cnt(1)`); r.Rows[0][0] != int64(2) {
		t.Fatalf("count = %v", r.Rows[0][0])
	}
	// Re-create with a compatible schema: the prepared statement replans
	// against the new table rather than reading the dropped one.
	mustExec(t, s, `DROP TABLE t; CREATE TABLE t (v float);
		INSERT INTO t VALUES (10), (20)`)
	if r := mustQuery(t, s, `EXECUTE cnt(0)`); r.Rows[0][0] != int64(2) {
		t.Fatalf("replanned count = %v", r.Rows[0][0])
	}
	// Re-create dropping the column: EXECUTE errors cleanly.
	mustExec(t, s, `DROP TABLE t; CREATE TABLE t (w bigint)`)
	if _, err := s.Exec(`EXECUTE cnt(0)`); err == nil ||
		!strings.Contains(err.Error(), "no such column") {
		t.Fatalf("stale prepared: %v", err)
	}
}

func TestScalarAggregateComputedArgs(t *testing.T) {
	// ROADMAP item: quantile/fmcount over computed expressions, the way
	// table-valued calls already stage them.
	s := newSession(t)
	mustExec(t, s, `CREATE TABLE t (v float, i bigint)`)
	tbl, _ := s.DB().Table("t")
	for k := 1; k <= 100; k++ {
		if err := tbl.Insert(float64(k), int64(k%10)); err != nil {
			t.Fatal(err)
		}
	}
	r := mustQuery(t, s, `SELECT madlib.quantile(v * 2, 0.5) FROM t`)
	if med := r.Rows[0][0].(float64); med < 100 || med > 102 {
		t.Fatalf("quantile(v*2) = %v", med)
	}
	// Composes with WHERE and GROUP BY like any aggregate.
	r = mustQuery(t, s, `SELECT i % 2, madlib.quantile(v + 0, 0.5) FROM t WHERE v <= 50 GROUP BY i`)
	if len(r.Rows) == 0 {
		t.Fatalf("rows = %v", r.Rows)
	}
	// Int columns feed quantile directly (regression: this used to read
	// the column through the wrong typed accessor).
	r = mustQuery(t, s, `SELECT madlib.quantile(i, 0.5) FROM t`)
	if q := r.Rows[0][0].(float64); q < 4 || q > 5 {
		t.Fatalf("quantile(int col) = %v", q)
	}
	r = mustQuery(t, s, `SELECT madlib.approx_quantile(sqrt(v), 0.05, 0.5) FROM t`)
	if q := r.Rows[0][0].(float64); math.Abs(q-math.Sqrt(50)) > 1.5 {
		t.Fatalf("approx_quantile(sqrt(v)) = %v", q)
	}
	// fmcount over an expression: v % 5 has 5 distinct values.
	r = mustQuery(t, s, `SELECT madlib.fmcount(i % 5) FROM t`)
	if n := r.Rows[0][0].(int64); n < 2 || n > 20 {
		t.Fatalf("fmcount(i %% 5) = %d", n)
	}
	// Runtime errors in the computed argument surface cleanly.
	if _, err := s.Exec(`SELECT madlib.quantile(v / (i - i), 0.5) FROM t`); err == nil ||
		!strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("computed arg error: %v", err)
	}
	// Non-numeric expressions are rejected at plan time.
	mustExec(t, s, `CREATE TABLE txt (s text); INSERT INTO txt VALUES ('a')`)
	if _, err := s.Exec(`SELECT madlib.quantile(s, 0.5) FROM txt`); err == nil {
		t.Fatal("quantile over text should fail")
	}
	// Parameters stay out of madlib arguments.
	if _, err := s.Exec(`PREPARE q AS SELECT madlib.quantile(v * $1, 0.5) FROM t`); err == nil ||
		!strings.Contains(err.Error(), "not allowed in madlib function arguments") {
		t.Fatalf("param in madlib arg: %v", err)
	}
}

func TestGroupByKeyKinds(t *testing.T) {
	// Grouping by each key kind (and composites) through the keyed path.
	s := newSession(t)
	mustExec(t, s, `CREATE TABLE t (i bigint, f float, b bool, s text, v double precision[]);
		INSERT INTO t VALUES
			(1, 1.5, true,  'x', {1,2}),
			(1, 1.5, true,  'x', {1,2}),
			(2, -0.0, false, 'y', {3}),
			(2, 0.0, false, 'y', {3})`)
	for _, tc := range []struct {
		q      string
		groups int
	}{
		{`SELECT i, count(*) FROM t GROUP BY i`, 2},
		{`SELECT f, count(*) FROM t GROUP BY f`, 2}, // -0.0 groups with 0.0
		{`SELECT b, count(*) FROM t GROUP BY b`, 2},
		{`SELECT s, count(*) FROM t GROUP BY s`, 2},
		{`SELECT v, count(*) FROM t GROUP BY v`, 2},
		{`SELECT i, s, count(*) FROM t GROUP BY i, s`, 2},
		{`SELECT i, f, b, s, count(*) FROM t GROUP BY i, f, b, s`, 2},
	} {
		r := mustQuery(t, s, tc.q)
		if len(r.Rows) != tc.groups {
			t.Errorf("%q: groups = %d (%v), want %d", tc.q, len(r.Rows), r.Rows, tc.groups)
			continue
		}
		for _, row := range r.Rows {
			if row[len(row)-1] != int64(2) {
				t.Errorf("%q: group size = %v, want 2", tc.q, row[len(row)-1])
			}
		}
	}
}

func TestSessionRunParsedStatement(t *testing.T) {
	// Run (no source text) still executes and reports timing without
	// caching.
	s := newSession(t)
	mustExec(t, s, `CREATE TABLE t (v float); INSERT INTO t VALUES (2)`)
	st, err := ParseStatement(`SELECT v * 3 FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run(st)
	if err != nil || r.Rows[0][0] != 6.0 {
		t.Fatalf("run parsed = %v, %v", r, err)
	}
	if s.LastTiming().CacheHit {
		t.Fatal("Run should not report a cache hit")
	}
}
