package sql

import (
	"fmt"
	"strings"
	"testing"
)

// Tests for the svdmf / lda / bootstrap SQL bindings and for $n
// placeholders inside table-valued madlib calls.

func TestExecMadlibSvdmf(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `CREATE TABLE ratings (i bigint, j bigint, v float)`)
	// A rank-1 structure: v = (i+1) * (j+1) / 4.
	for i := 0; i < 6; i++ {
		for j := 0; j < 5; j++ {
			mustExec(t, s, fmt.Sprintf(`INSERT INTO ratings VALUES (%d, %d, %g)`,
				i, j, float64((i+1)*(j+1))/4))
		}
	}
	r := mustQuery(t, s, `SELECT (madlib.svdmf(i, j, v, 2, 60)).* FROM ratings`)
	if len(r.Rows) != 1 {
		t.Fatalf("rows = %v", r.Rows)
	}
	if r.Cols[0] != "rows" || r.Cols[3] != "rmse" {
		t.Fatalf("cols = %v", r.Cols)
	}
	row := r.Rows[0]
	if row[0] != int64(6) || row[1] != int64(5) || row[2] != int64(2) {
		t.Fatalf("dims = %v", row)
	}
	if rmse := row[3].(float64); rmse > 1.0 {
		t.Fatalf("rmse = %v", rmse)
	}
}

func TestExecMadlibLDA(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `CREATE TABLE tokens (doc bigint, word bigint)`)
	// Two clearly separated topics: docs 0-4 use words 0-4, docs 5-9 use
	// words 5-9.
	for d := 0; d < 10; d++ {
		base := 0
		if d >= 5 {
			base = 5
		}
		for k := 0; k < 20; k++ {
			mustExec(t, s, fmt.Sprintf(`INSERT INTO tokens VALUES (%d, %d)`, d, base+k%5))
		}
	}
	r := mustQuery(t, s, `SELECT (madlib.lda(doc, word, 2, 50, 7)).* FROM tokens`)
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %v", r.Rows)
	}
	var total int64
	for _, row := range r.Rows {
		total += row[1].(int64)
		if words := row[2].([]float64); len(words) == 0 {
			t.Fatalf("no top words: %v", row)
		}
	}
	if total != 200 {
		t.Fatalf("token total = %d", total)
	}
}

func TestExecMadlibBootstrap(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `CREATE TABLE m (v float)`)
	for i := 0; i < 200; i++ {
		mustExec(t, s, fmt.Sprintf(`INSERT INTO m VALUES (%d)`, i%11))
	}
	r := mustQuery(t, s, `SELECT (madlib.bootstrap(v, 80, 1.0, 5)).* FROM m`)
	if len(r.Rows) != 1 {
		t.Fatalf("rows = %v", r.Rows)
	}
	row := r.Rows[0]
	mean, lo, hi := row[0].(float64), row[2].(float64), row[3].(float64)
	if mean < 4 || mean > 6 {
		t.Fatalf("bootstrap mean = %v", mean)
	}
	if lo > mean || hi < mean {
		t.Fatalf("ci = [%v, %v] around %v", lo, hi, mean)
	}
	if row[4] != int64(80) {
		t.Fatalf("iterations = %v", row[4])
	}
	// Computed expression argument.
	r = mustQuery(t, s, `SELECT (madlib.bootstrap(v * 2, 40)).* FROM m`)
	if mean2 := r.Rows[0][0].(float64); mean2 < 8 || mean2 > 12 {
		t.Fatalf("bootstrap mean of v*2 = %v", mean2)
	}
}

func TestExecTableValuedWithParams(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `CREATE TABLE points (coords float[], tag bigint)`)
	for i := 0; i < 60; i++ {
		mustExec(t, s, fmt.Sprintf(`INSERT INTO points VALUES ({%d, %d}, %d)`,
			i%3*10, i%3*10+1, i%2))
	}
	// $n as a scalar madlib argument (the ROADMAP open item).
	mustExec(t, s, `PREPARE k AS SELECT (madlib.kmeans(coords, $1, 1)).* FROM points`)
	r := mustQuery(t, s, `EXECUTE k(3)`)
	if len(r.Rows) != 3 {
		t.Fatalf("k=3 gave %d centroids", len(r.Rows))
	}
	r = mustQuery(t, s, `EXECUTE k(2)`)
	if len(r.Rows) != 2 {
		t.Fatalf("k=2 gave %d centroids", len(r.Rows))
	}
	// $n in the WHERE clause of a table-valued call.
	mustExec(t, s, `PREPARE kw AS SELECT (madlib.kmeans(coords, 2, 1)).* FROM points WHERE tag = $1`)
	r = mustQuery(t, s, `EXECUTE kw(1)`)
	var sizes int64
	for _, row := range r.Rows {
		sizes += row[2].(int64)
	}
	if sizes != 30 {
		t.Fatalf("clustered %d rows, want the 30 with tag=1", sizes)
	}
	// Arithmetic over parameters resolves at EXECUTE time.
	mustExec(t, s, `PREPARE ka AS SELECT (madlib.kmeans(coords, $1 + 1)).* FROM points`)
	r = mustQuery(t, s, `EXECUTE ka(1)`)
	if len(r.Rows) != 2 {
		t.Fatalf("k=$1+1 gave %d centroids", len(r.Rows))
	}
	// $n in the ORDER BY of a table-valued call resolves at EXECUTE time.
	mustExec(t, s, `PREPARE ko AS SELECT (madlib.kmeans(coords, 3, 1)).* FROM points ORDER BY size * $1`)
	r = mustQuery(t, s, `EXECUTE ko(-1)`)
	if len(r.Rows) != 3 {
		t.Fatalf("ordered kmeans gave %d rows", len(r.Rows))
	}
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i-1][2].(int64) < r.Rows[i][2].(int64) {
			t.Fatalf("ORDER BY size * -1 not descending: %v", r.Rows)
		}
	}
	// Parameters mixed with column references stay rejected: the staging
	// column's type cannot be known at plan time.
	_, err := s.Exec(`PREPARE bad2 AS SELECT (madlib.kmeans(coords, tag + $1)).* FROM points`)
	if err == nil || !strings.Contains(err.Error(), "parameters cannot be combined with column references") {
		t.Fatalf("param+column madlib argument: %v", err)
	}
}

func TestExecMadlibCRF(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `CREATE TABLE sentences (words text, tags text)`)
	for _, pair := range [][2]string{
		{"the dog runs", "DT NN VB"},
		{"the cat sleeps", "DT NN VB"},
		{"a dog barks", "DT NN VB"},
		{"dogs run", "NN VB"},
	} {
		mustExec(t, s, fmt.Sprintf(`INSERT INTO sentences VALUES ('%s', '%s')`, pair[0], pair[1]))
	}
	r := mustQuery(t, s, `SELECT (madlib.crf(words, tags, 5)).* FROM sentences`)
	if len(r.Rows) != 1 {
		t.Fatalf("rows = %v", r.Rows)
	}
	if r.Cols[0] != "tags" || r.Cols[1] != "features" || r.Cols[2] != "sentences" {
		t.Fatalf("cols = %v", r.Cols)
	}
	row := r.Rows[0]
	if row[0] != int64(3) { // DT, NN, VB
		t.Fatalf("tags = %v", row[0])
	}
	if row[1].(int64) <= 0 {
		t.Fatalf("features = %v", row[1])
	}
	if row[2] != int64(4) {
		t.Fatalf("sentences = %v", row[2])
	}
	// Mismatched token counts surface as a clean SQL error.
	mustExec(t, s, `CREATE TABLE bad (words text, tags text)`)
	mustExec(t, s, `INSERT INTO bad VALUES ('one two', 'DT')`)
	if _, err := s.Query(`SELECT (madlib.crf(words, tags)).* FROM bad`); err == nil {
		t.Fatal("mismatched words/tags should error")
	}
}
