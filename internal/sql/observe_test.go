package sql

import (
	"bytes"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"testing"
)

// TestCountersViewMatchesRegistry proves the madlib_stats_counters view
// is a faithful snapshot of the live registry: every counter value read
// through SQL lies between the registry's values immediately before and
// immediately after the query (counters are monotone), and counters
// known to be stable across the read match exactly.
func TestCountersViewMatchesRegistry(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `CREATE TABLE t (g bigint, v float);
		INSERT INTO t VALUES (1, 10), (1, 30), (2, 5)`)
	mustQuery(t, s, `SELECT g, avg(v) FROM t GROUP BY g`)
	mustQuery(t, s, `SELECT g, avg(v) FROM t GROUP BY g`)

	snap := func() map[string]int64 {
		m := map[string]int64{}
		for _, st := range s.db.Metrics().Snapshot() {
			m[st.Name] = st.Value
		}
		return m
	}
	before := snap()
	res := mustQuery(t, s, `SELECT name, value FROM madlib_stats_counters`)
	after := snap()

	seen := map[string]int64{}
	for _, row := range res.Rows {
		name := row[0].(string)
		v := row[1].(int64)
		seen[name] = v
		if v < before[name] || v > after[name] {
			t.Errorf("%s = %d through SQL, want within registry range [%d, %d]",
				name, v, before[name], after[name])
		}
	}
	for name, v := range before {
		if _, ok := seen[name]; !ok {
			t.Errorf("registry counter %s missing from the view", name)
		}
		// The view query itself touches only sql_* and engine scan
		// counters; everything else must round-trip exactly.
		stable := !strings.HasPrefix(name, "sql_") &&
			name != "engine_queries" && name != "engine_rows_scanned" &&
			name != "engine_scans_sequential" && name != "engine_scans_parallel"
		if stable && seen[name] != v {
			t.Errorf("%s = %d through SQL, want %d", name, seen[name], v)
		}
	}
	if seen["sql_plan_cache_hits"] != 1 {
		t.Errorf("sql_plan_cache_hits = %d, want 1 (one repeated SELECT)", seen["sql_plan_cache_hits"])
	}
}

// TestCountersViewUnderConcurrentQueries reads the counters view from
// many goroutines while other goroutines execute data queries on their
// own sessions over the same engine. Under -race this pins that the
// registry's atomics, the per-session metrics handles and the view
// materialization are safe against each other.
func TestCountersViewUnderConcurrentQueries(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `CREATE TABLE t (g bigint, v float);
		INSERT INTO t VALUES (1, 10), (1, 30), (2, 5)`)

	const goroutines, perGoroutine = 6, 20
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sess := NewSession(s.db)
			for i := 0; i < perGoroutine; i++ {
				var err error
				if g%2 == 0 {
					_, err = sess.Query(`SELECT name, value FROM madlib_stats_counters`)
				} else {
					_, err = sess.Query(`SELECT g, avg(v) FROM t GROUP BY g`)
				}
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestSlowQueryLog covers the structured query log: with a zero
// threshold every statement is recorded, the entry carries the
// statement's text, lane and row count, and disabling the logger stops
// emission without disturbing the sql_slow_queries counter.
func TestSlowQueryLog(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `CREATE TABLE t (g bigint, v float);
		INSERT INTO t VALUES (1, 10), (1, 30), (2, 5)`)

	var buf bytes.Buffer
	s.SetQueryLog(slog.New(slog.NewTextHandler(&buf, nil)), 0)
	mustQuery(t, s, `SELECT g, avg(v) FROM t GROUP BY g`)
	out := buf.String()
	if !strings.Contains(out, "slow query") {
		t.Fatalf("log output missing the event name: %q", out)
	}
	for _, want := range []string{"SELECT g, avg(v) FROM t GROUP BY g", "lane=batch", "rows=2", "cache_hit=false"} {
		if !strings.Contains(out, want) {
			t.Errorf("log output missing %q: %q", want, out)
		}
	}
	if got := s.db.Metrics().Counter("sql_slow_queries").Value(); got != 1 {
		t.Errorf("sql_slow_queries = %d, want 1", got)
	}

	s.SetQueryLog(nil, 0)
	buf.Reset()
	mustQuery(t, s, `SELECT g, avg(v) FROM t GROUP BY g`)
	if buf.Len() != 0 {
		t.Errorf("disabled log still emitted: %q", buf.String())
	}
	if got := s.db.Metrics().Counter("sql_slow_queries").Value(); got != 1 {
		t.Errorf("sql_slow_queries after disable = %d, want 1", got)
	}
}

// TestRecentQueriesRing pins the ring-buffer semantics behind
// madlib_stats_queries: capacity-bounded, newest first, and a query
// never records itself.
func TestRecentQueriesRing(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `CREATE TABLE t (g bigint, v float);
		INSERT INTO t VALUES (1, 10)`)
	// DDL is not observed: only the INSERT lands in the ring.
	if got := len(s.RecentQueries()); got != 1 {
		t.Fatalf("after CREATE+INSERT: %d recent queries, want 1", got)
	}
	for i := 0; i < recentQueryCap+5; i++ {
		mustQuery(t, s, fmt.Sprintf(`SELECT g FROM t WHERE g < %d`, 100+i))
	}
	recent := s.RecentQueries()
	if len(recent) != recentQueryCap {
		t.Fatalf("ring holds %d entries, want %d", len(recent), recentQueryCap)
	}
	wantNewest := fmt.Sprintf(`SELECT g FROM t WHERE g < %d`, 100+recentQueryCap+4)
	if recent[0].Text != wantNewest {
		t.Errorf("newest entry = %q, want %q", recent[0].Text, wantNewest)
	}
	if recent[0].Rows != 1 || recent[0].Lane == "" {
		t.Errorf("newest entry = %+v, want 1 row and a lane", recent[0])
	}
}
