package sql

import (
	"fmt"
	"math"
	"math/rand"
	"regexp"
	"runtime"
	"strings"
	"sync"
	"testing"

	"madlib/internal/engine"
)

// Differential harness: every generated query runs through two sessions
// over the same database — one on the vectorized column-batch lane, one
// forced onto the per-row lane — and the results (rows, column names,
// tags, errors) must be identical. The row lane is the semantic oracle;
// the generator is seeded, so failures reproduce.

// newDiffDB loads a mixed-type table exercising the edge values the
// kernels must agree on: zeros (division), negative zero and negatives
// (float compare/keying), int64 extremes (overflow wraparound), repeated
// group keys, and a Vector column that forces row-lane fallback.
func newDiffDB(t *testing.T, rows int) *engine.DB {
	t.Helper()
	db := engine.Open(3)
	tbl, err := db.CreateTable("d", engine.Schema{
		{Name: "g", Kind: engine.Int},
		{Name: "i", Kind: engine.Int},
		{Name: "f", Kind: engine.Float},
		{Name: "s", Kind: engine.String},
		{Name: "b", Kind: engine.Bool},
		{Name: "v", Kind: engine.Vector},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for r := 0; r < rows; r++ {
		var i int64
		switch rng.Intn(10) {
		case 0:
			i = 0
		case 1:
			i = math.MaxInt64
		case 2:
			i = math.MinInt64
		default:
			i = int64(rng.Intn(2001) - 1000)
		}
		var f float64
		switch rng.Intn(10) {
		case 0:
			f = 0
		case 1:
			f = math.Copysign(0, -1)
		default:
			f = float64(rng.Intn(4001)-2000) / 8
		}
		err := tbl.Insert(
			int64(r%7), i, f,
			fmt.Sprintf("s%d", rng.Intn(9)),
			rng.Intn(2) == 0,
			[]float64{float64(r % 3)},
		)
		if err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// exprGen builds random batch-shaped expressions over the diff table.
type exprGen struct{ rng *rand.Rand }

func (g *exprGen) numExpr(depth int) string {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		switch g.rng.Intn(6) {
		case 0:
			return "i"
		case 1:
			return "f"
		case 2:
			return "g"
		case 3:
			return fmt.Sprintf("%d", g.rng.Intn(7)-3) // includes 0
		case 4:
			return fmt.Sprintf("%g", float64(g.rng.Intn(13)-6)/4) // includes 0
		default:
			return "g"
		}
	}
	switch g.rng.Intn(8) {
	case 0:
		return fmt.Sprintf("(- %s)", g.numExpr(depth-1))
	case 1:
		return fmt.Sprintf("abs(%s)", g.numExpr(depth-1))
	case 2:
		return fmt.Sprintf("floor(%s)", g.numExpr(depth-1))
	default:
		ops := []string{"+", "-", "*", "/", "%"}
		op := ops[g.rng.Intn(len(ops))]
		return fmt.Sprintf("(%s %s %s)", g.numExpr(depth-1), op, g.numExpr(depth-1))
	}
}

func (g *exprGen) boolExpr(depth int) string {
	if depth <= 0 || g.rng.Intn(4) == 0 {
		switch g.rng.Intn(4) {
		case 0:
			return "b"
		case 1:
			return fmt.Sprintf("s %s 's%d'", g.cmpOp(), g.rng.Intn(9))
		default:
			return fmt.Sprintf("%s %s %s", g.numExpr(1), g.cmpOp(), g.numExpr(1))
		}
	}
	switch g.rng.Intn(4) {
	case 0:
		return fmt.Sprintf("NOT (%s)", g.boolExpr(depth-1))
	case 1:
		return fmt.Sprintf("(%s AND %s)", g.boolExpr(depth-1), g.boolExpr(depth-1))
	case 2:
		return fmt.Sprintf("(%s OR %s)", g.boolExpr(depth-1), g.boolExpr(depth-1))
	default:
		return fmt.Sprintf("%s %s %s", g.numExpr(2), g.cmpOp(), g.numExpr(2))
	}
}

func (g *exprGen) cmpOp() string {
	ops := []string{"=", "<>", "<", "<=", ">", ">="}
	return ops[g.rng.Intn(len(ops))]
}

func (g *exprGen) aggExpr() string {
	switch g.rng.Intn(8) {
	case 0:
		return "count(*)"
	case 1:
		return fmt.Sprintf("count(%s)", g.numExpr(2))
	case 2:
		return fmt.Sprintf("min(%s)", g.numExpr(2))
	case 3:
		return fmt.Sprintf("max(%s)", g.numExpr(2))
	case 4:
		return fmt.Sprintf("avg(%s)", g.numExpr(2))
	case 5:
		return fmt.Sprintf("variance(%s)", g.numExpr(2))
	case 6:
		return fmt.Sprintf("stddev(%s)", g.numExpr(2))
	default:
		return fmt.Sprintf("sum(%s)", g.numExpr(2))
	}
}

// groupErrPrefix strips the engine's "group <key>: " wrapper: which
// group surfaces a row-lane aggregate error depends on map iteration
// order, so only the underlying error is comparable.
var groupErrPrefix = regexp.MustCompile(`^group [^:]*: `)

func normalizeErr(err error) string {
	if err == nil {
		return ""
	}
	return groupErrPrefix.ReplaceAllString(err.Error(), "")
}

func formatResult(res *Result) string {
	if res == nil {
		return "<nil>"
	}
	return res.Format()
}

// runDiffQuery executes one query on both lanes and fails on any
// divergence. It returns whether the batch session actually planned the
// vectorized lane (so callers can require coverage).
func runDiffQuery(t *testing.T, batchSess, rowSess *Session, query string) bool {
	t.Helper()
	bRes, bErr := batchSess.Query(query)
	rRes, rErr := rowSess.Query(query)
	if normalizeErr(bErr) != normalizeErr(rErr) {
		t.Fatalf("query %q:\n  batch err: %v\n  row err:   %v", query, bErr, rErr)
	}
	if bErr != nil {
		return false
	}
	bs, rs := formatResult(bRes), formatResult(rRes)
	if bs != rs {
		t.Fatalf("query %q:\n--- batch lane ---\n%s\n--- row lane ---\n%s", query, bs, rs)
	}
	st, err := ParseStatement(query)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := batchSess.planStmt(st)
	if err != nil {
		return false
	}
	ap, ok := pl.(*aggPlan)
	return ok && ap.batch != nil
}

func TestBatchLaneDifferential(t *testing.T) {
	for _, rows := range []int{229, 5000} { // 5000 rows crosses batch boundaries per segment
		t.Run(fmt.Sprintf("rows=%d", rows), func(t *testing.T) {
			db := newDiffDB(t, rows)
			batchSess := NewSession(db)
			rowSess := NewSession(db)
			rowSess.SetBatchExecution(false)
			g := &exprGen{rng: rand.New(rand.NewSource(42))}
			groupCols := []string{"", "g", "s", "b", "f", "g, s"}
			batchPlanned := 0
			const n = 300
			for q := 0; q < n; q++ {
				var sb strings.Builder
				sb.WriteString("SELECT ")
				aggs := 1 + g.rng.Intn(3)
				group := groupCols[g.rng.Intn(len(groupCols))]
				var items []string
				if group != "" {
					items = append(items, strings.Split(group, ", ")...)
				}
				for a := 0; a < aggs; a++ {
					items = append(items, g.aggExpr())
				}
				sb.WriteString(strings.Join(items, ", "))
				sb.WriteString(" FROM d")
				if g.rng.Intn(3) > 0 {
					sb.WriteString(" WHERE " + g.boolExpr(3))
				}
				if group != "" {
					sb.WriteString(" GROUP BY " + group)
				}
				if runDiffQuery(t, batchSess, rowSess, sb.String()) {
					batchPlanned++
				}
			}
			// The generator only emits batch-shaped queries; if most of
			// them fell back, the lane selection itself is broken.
			if batchPlanned < n/2 {
				t.Fatalf("only %d/%d generated queries planned the batch lane", batchPlanned, n)
			}
		})
	}
}

// TestBatchLaneDifferentialEdges pins the named edge cases: guarded and
// unguarded division by zero, modulo by zero, int64 overflow wraparound,
// negative-zero grouping, and scan filtering.
func TestBatchLaneDifferentialEdges(t *testing.T) {
	db := newDiffDB(t, 500)
	batchSess := NewSession(db)
	rowSess := NewSession(db)
	rowSess.SetBatchExecution(false)
	queries := []string{
		// Division/modulo by zero from column data (i is 0 on some rows).
		`SELECT sum(10 / i) FROM d`,
		`SELECT sum(10 % i) FROM d`,
		`SELECT sum(10.5 / f) FROM d`,
		`SELECT sum(f % 0) FROM d`,
		`SELECT g, sum(1 / i) FROM d GROUP BY g`,
		// Constant division by zero only errors when a row is selected.
		`SELECT sum(1 / 0) FROM d WHERE f > 1e18`,
		`SELECT sum(1 / 0) FROM d WHERE f > -1e18`,
		// AND/OR short-circuiting guards the faulting side per row.
		`SELECT count(*) FROM d WHERE i <> 0 AND 100 / i > 2`,
		`SELECT count(*) FROM d WHERE i = 0 OR 100 / i > 2`,
		`SELECT sum(f) FROM d WHERE NOT (i <> 0 AND 100 / i > 2)`,
		// Int64 overflow wraps identically on both lanes.
		`SELECT sum(i * i), min(i + i), max(i - 1 + i) FROM d`,
		`SELECT sum(i + i) FROM d WHERE i > 9223372036854775806`,
		// -0 and +0 group together; float keys survive both lanes.
		`SELECT f, count(*) FROM d WHERE f = 0 GROUP BY f`,
		// String compares and bool columns in predicates.
		`SELECT min(i), max(f) FROM d WHERE s >= 's3' AND b`,
		`SELECT s, stddev(f), variance(i) FROM d WHERE s <> 's0' GROUP BY s`,
		// Composite group keys.
		`SELECT g, b, avg(f), count(*) FROM d GROUP BY g, b`,
		// Scalar functions inside aggregate args and predicates.
		`SELECT sum(abs(i % 97)), avg(sqrt(abs(f))) FROM d WHERE floor(f) <= 10`,
		`SELECT max(pow(abs(f), 0.5)) FROM d WHERE exp(0) = 1`,
		// Empty result sets.
		`SELECT sum(i), count(*) FROM d WHERE f > 1e18`,
		`SELECT g, sum(i) FROM d WHERE f > 1e18 GROUP BY g`,
		// Projection scans with a vectorized filter.
		`SELECT i, f, s FROM d WHERE f > 10 AND i % 2 = 0 ORDER BY i, s LIMIT 50`,
		`SELECT i + 1, f * 2 FROM d WHERE NOT b ORDER BY 1 DESC LIMIT 20`,
	}
	for _, q := range queries {
		runDiffQuery(t, batchSess, rowSess, q)
	}
}

// TestBatchLaneFallback proves the planner rejects the vectorized lane
// for shapes it cannot execute — and that results still match the
// row-only session.
func TestBatchLaneFallback(t *testing.T) {
	db := newDiffDB(t, 200)
	batchSess := NewSession(db)
	rowSess := NewSession(db)
	rowSess.SetBatchExecution(false)
	fallbacks := []string{
		// Vector column in an aggregate argument.
		`SELECT count(array_get(v, 1)) FROM d`,
		// Vector-valued group key.
		`SELECT v, count(*) FROM d GROUP BY v`,
		// min/max over bool stays boxed.
		`SELECT min(b), max(b) FROM d`,
	}
	for _, q := range fallbacks {
		st, err := ParseStatement(q)
		if err != nil {
			t.Fatal(err)
		}
		pl, err := batchSess.planStmt(st)
		if err != nil {
			t.Fatalf("plan %q: %v", q, err)
		}
		if ap, ok := pl.(*aggPlan); ok && ap.batch != nil {
			t.Fatalf("query %q unexpectedly planned the batch lane", q)
		}
		bRes, bErr := batchSess.Query(q)
		rRes, rErr := rowSess.Query(q)
		if normalizeErr(bErr) != normalizeErr(rErr) {
			t.Fatalf("query %q: batch err %v, row err %v", q, bErr, rErr)
		}
		if bErr == nil && formatResult(bRes) != formatResult(rRes) {
			t.Fatalf("query %q: fallback results diverge", q)
		}
	}
	// Shapes that used to fall back but now vectorize: text min/max and
	// madlib scalar aggregates. Both lanes must still agree.
	promoted := []string{
		`SELECT min(s), max(s) FROM d`,
		`SELECT g, min(s) FROM d WHERE f > 0 GROUP BY g`,
		`SELECT madlib.fmcount(s) FROM d`,
		`SELECT g, madlib.quantile(f, 0.5) FROM d GROUP BY g`,
		`SELECT madlib.quantile(f, 0.25), count(*), min(s) FROM d WHERE i <> 0`,
	}
	for _, q := range promoted {
		if !runDiffQuery(t, batchSess, rowSess, q) {
			t.Fatalf("query %q should now plan the batch lane", q)
		}
	}
}

// TestSetBatchExecutionReplansPrepared proves the lane toggle reaches
// prepared statements: after SetBatchExecution(false) an EXECUTE must
// replan onto the row lane, not keep the stored batch plan.
func TestSetBatchExecutionReplansPrepared(t *testing.T) {
	db := newDiffDB(t, 100)
	s := NewSession(db)
	if _, err := s.Exec(`PREPARE q AS SELECT g, avg(f) FROM d GROUP BY g`); err != nil {
		t.Fatal(err)
	}
	lane := func() *batchAggLane {
		s.mu.Lock()
		defer s.mu.Unlock()
		pl := s.prepared["q"].plan
		if pl == nil {
			return nil
		}
		return pl.(*aggPlan).batch
	}
	if _, err := s.Query(`EXECUTE q`); err != nil {
		t.Fatal(err)
	}
	if lane() == nil {
		t.Fatal("prepared plan should start on the batch lane")
	}
	s.SetBatchExecution(false)
	want, err := s.Query(`EXECUTE q`)
	if err != nil {
		t.Fatal(err)
	}
	if lane() != nil {
		t.Fatal("EXECUTE after SetBatchExecution(false) kept the batch lane")
	}
	s.SetBatchExecution(true)
	got, err := s.Query(`EXECUTE q`)
	if err != nil {
		t.Fatal(err)
	}
	if lane() == nil {
		t.Fatal("EXECUTE after re-enabling did not return to the batch lane")
	}
	if formatResult(got) != formatResult(want) {
		t.Fatalf("lanes diverge for the prepared plan:\n%s\n%s", formatResult(got), formatResult(want))
	}
}

// TestBatchLanePrepared runs the parameterized WHERE comparison (the
// SQLPrepared benchmark shape) on both lanes.
func TestBatchLanePrepared(t *testing.T) {
	db := newDiffDB(t, 500)
	batchSess := NewSession(db)
	rowSess := NewSession(db)
	rowSess.SetBatchExecution(false)
	prep := `PREPARE q AS SELECT g, avg(f), count(*) FROM d WHERE f > $1 GROUP BY g`
	for _, sess := range []*Session{batchSess, rowSess} {
		if _, err := sess.Exec(prep); err != nil {
			t.Fatal(err)
		}
	}
	// The prepared plan on the batch session must use the batch lane.
	st, err := ParseStatement(`SELECT g, avg(f), count(*) FROM d WHERE f > $1 GROUP BY g`)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := batchSess.planStmt(st)
	if err != nil {
		t.Fatal(err)
	}
	if ap, ok := pl.(*aggPlan); !ok || ap.batch == nil {
		t.Fatal("parameterized comparison did not plan the batch lane")
	}
	for _, arg := range []string{"-5", "0", "12.25", "1e18", "'nope'"} {
		q := fmt.Sprintf("EXECUTE q(%s)", arg)
		bRes, bErr := batchSess.Query(q)
		rRes, rErr := rowSess.Query(q)
		if normalizeErr(bErr) != normalizeErr(rErr) {
			t.Fatalf("EXECUTE q(%s): batch err %v, row err %v", arg, bErr, rErr)
		}
		if bErr == nil && formatResult(bRes) != formatResult(rRes) {
			t.Fatalf("EXECUTE q(%s):\n--- batch ---\n%s\n--- row ---\n%s",
				arg, formatResult(bRes), formatResult(rRes))
		}
	}
}

// newJoinDiffDB extends the diff table with a small dimension table
// keyed on d.g, for exercising the relational (row-lane) shapes.
func newJoinDiffDB(t *testing.T, rows int) *engine.DB {
	t.Helper()
	db := newDiffDB(t, rows)
	dims, err := db.CreateTable("dims", engine.Schema{
		{Name: "g", Kind: engine.Int},
		{Name: "name", Kind: engine.String},
	})
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 5; g++ { // g=5,6 of d stay unmatched
		if err := dims.Insert(int64(g), fmt.Sprintf("g%d", g)); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// TestRowLaneShapesPinned pins the planner's lane decision. After the
// NULL-aware kernel work the batch lane covers LEFT JOIN scans and
// aggregates (validity bitmaps over the padded side), DISTINCT, and
// the window input gather; the remaining row-only shapes are
// Vector-typed operands, bool min/max, scalar function calls over
// possibly-NULL arguments, and parameter-vs-nullable comparisons.
func TestRowLaneShapesPinned(t *testing.T) {
	db := newJoinDiffDB(t, 300)
	sess := NewSession(db)
	plan := func(q string) stmtPlan {
		t.Helper()
		st, err := ParseStatement(q)
		if err != nil {
			t.Fatal(err)
		}
		pl, err := sess.planStmt(st)
		if err != nil {
			t.Fatalf("plan %q: %v", q, err)
		}
		return pl
	}
	// Inner-joined aggregate: batch lane over the join materialization.
	if ap := plan(`SELECT dims.name, sum(d.f) FROM d JOIN dims ON d.g = dims.g GROUP BY dims.name`).(*aggPlan); ap.batch == nil || ap.src.join == nil {
		t.Fatal("inner-joined aggregate must take the batch lane over a join source")
	}
	// Inner-joined scan: the WHERE filter vectorizes over the join output.
	if sp := plan(`SELECT d.i, dims.name FROM d JOIN dims ON d.g = dims.g WHERE d.f > 0`).(*scanPlan); sp.batchPred == nil || sp.src.join == nil {
		t.Fatal("inner-joined scan must vectorize its filter")
	}
	// LEFT JOIN aggregate: batch lane — count(nullable) folds with a
	// NULL-skipping validity lane.
	if ap := plan(`SELECT count(dims.name) FROM d LEFT JOIN dims ON d.g = dims.g`).(*aggPlan); ap.batch == nil {
		t.Fatal("LEFT JOIN aggregate must take the batch lane")
	}
	// LEFT JOIN scan: vectorized filter plus columnar projection; the
	// nullable column boxes NULL where the validity bitmap is false.
	if sp := plan(`SELECT d.i, dims.name FROM d LEFT JOIN dims ON d.g = dims.g WHERE d.f > 0`).(*scanPlan); sp.batchPred == nil || sp.projItems == nil {
		t.Fatal("LEFT JOIN scan must vectorize its filter and projection")
	}
	// DISTINCT scan: batch lane; dedupe runs over the boxed output.
	if sp := plan(`SELECT DISTINCT g FROM d WHERE f > 0`).(*scanPlan); sp.batchPred == nil || !sp.distinct {
		t.Fatal("DISTINCT scan must take the batch lane")
	}
	// DISTINCT aggregate: batch lane.
	if ap := plan(`SELECT DISTINCT avg(f) FROM d GROUP BY g`).(*aggPlan); ap.batch == nil {
		t.Fatal("DISTINCT aggregate must take the batch lane")
	}
	// Window: sum/count windows gather their input on the batch lane
	// (the per-partition fold itself stays row-at-a-time).
	if wp := plan(`SELECT sum(f) OVER (PARTITION BY g ORDER BY i) FROM d WHERE b`).(*windowPlan); wp.batch == nil {
		t.Fatal("window input gather must take the batch lane")
	}
	if wp := plan(`SELECT count(dims.name) OVER (PARTITION BY d.g ORDER BY d.i) FROM d LEFT JOIN dims ON d.g = dims.g`).(*windowPlan); wp.batch == nil {
		t.Fatal("window gather over a LEFT JOIN must take the batch lane")
	}
	// Still row lane: Vector operands have no batch kernels.
	if sp := plan(`SELECT i FROM d WHERE array_get(v, 1) >= 0`).(*scanPlan); sp.batchPred != nil || sp.projItems != nil {
		t.Fatal("Vector predicate must keep the scan on the row lane")
	}
	if wp := plan(`SELECT row_number() OVER (PARTITION BY v ORDER BY i) FROM d`).(*windowPlan); wp.batch != nil {
		t.Fatal("Vector partition key must keep the window gather on the row lane")
	}
	// Still row lane: scalar functions over possibly-NULL arguments (the
	// row lane errors on NULL args; the kernels cannot reproduce that
	// per-row, so the planner refuses).
	if ap := plan(`SELECT sum(abs(dims.g)) FROM d LEFT JOIN dims ON d.g = dims.g`).(*aggPlan); ap.batch != nil {
		t.Fatal("scalar function over a nullable argument must keep the row lane")
	}
	// Controls: plain shapes still vectorize.
	if ap := plan(`SELECT g, sum(f) FROM d WHERE f > 0 GROUP BY g`).(*aggPlan); ap.batch == nil {
		t.Fatal("plain aggregate lost the batch lane")
	}
	if sp := plan(`SELECT i FROM d WHERE f > 0`).(*scanPlan); sp.batchPred == nil {
		t.Fatal("plain scan filter lost the batch lane")
	}
}

// TestRowLaneShapesCacheConsistency runs each row-lane shape three ways
// — fresh plan, plan-cache hit, and a batch-disabled session — and
// requires identical results. The cache hit is asserted via LastTiming.
func TestRowLaneShapesCacheConsistency(t *testing.T) {
	db := newJoinDiffDB(t, 400)
	sess := NewSession(db)
	rowSess := NewSession(db)
	rowSess.SetBatchExecution(false)
	queries := []string{
		`SELECT d.g, dims.name, d.i FROM d JOIN dims ON d.g = dims.g WHERE d.f > 0 ORDER BY d.g, d.i, d.s LIMIT 40`,
		`SELECT dims.name, count(*), sum(d.i), avg(d.f) FROM d JOIN dims ON d.g = dims.g GROUP BY dims.name ORDER BY dims.name`,
		`SELECT d.g, dims.name FROM d LEFT JOIN dims ON d.g = dims.g ORDER BY d.g, d.i LIMIT 30`,
		`SELECT count(dims.name), count(*) FROM d LEFT JOIN dims ON d.g = dims.g`,
		`SELECT DISTINCT g, b FROM d ORDER BY g, b`,
		`SELECT DISTINCT g FROM d WHERE i % 2 = 0 ORDER BY g`,
		`SELECT g, row_number() OVER (PARTITION BY g ORDER BY i, f, s) rn FROM d ORDER BY g, rn LIMIT 50`,
		`SELECT g, sum(f) OVER (PARTITION BY g ORDER BY i, s) rs FROM d WHERE i <> 0 ORDER BY g, rs LIMIT 50`,
	}
	for _, q := range queries {
		first, err := sess.Query(q)
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		if sess.LastTiming().CacheHit {
			t.Fatalf("%q: first execution cannot be a cache hit", q)
		}
		second, err := sess.Query(q)
		if err != nil {
			t.Fatalf("%q (cached): %v", q, err)
		}
		if !sess.LastTiming().CacheHit {
			t.Fatalf("%q: second execution must hit the plan cache", q)
		}
		rowRes, err := rowSess.Query(q)
		if err != nil {
			t.Fatalf("%q (row session): %v", q, err)
		}
		if formatResult(first) != formatResult(second) {
			t.Fatalf("%q: cache hit changed the result\n--- fresh ---\n%s\n--- cached ---\n%s",
				q, formatResult(first), formatResult(second))
		}
		if formatResult(first) != formatResult(rowRes) {
			t.Fatalf("%q: sessions diverge\n--- batch sess ---\n%s\n--- row sess ---\n%s",
				q, formatResult(first), formatResult(rowRes))
		}
	}
}

// TestJoinPlanCacheInvalidation proves a cached join plan revalidates
// BOTH table bindings: re-creating either side forces a replan instead
// of executing against the dropped table.
func TestJoinPlanCacheInvalidation(t *testing.T) {
	db := newJoinDiffDB(t, 100)
	sess := NewSession(db)
	const q = `SELECT count(*) FROM d JOIN dims ON d.g = dims.g`
	first, err := sess.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	// Re-create the RIGHT table through a different session: the cached
	// plan's pointer check must notice.
	other := NewSession(db)
	if _, err := other.Exec(`DROP TABLE dims; CREATE TABLE dims (g bigint, name text)`); err != nil {
		t.Fatal(err)
	}
	if _, err := other.Exec(`INSERT INTO dims VALUES (0, 'only')`); err != nil {
		t.Fatal(err)
	}
	second, err := sess.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if sess.LastTiming().CacheHit {
		t.Fatal("stale join plan was executed from the cache after right-table DDL")
	}
	if formatResult(first) == formatResult(second) {
		t.Fatal("replanned join should see the new (smaller) dims table")
	}
	// Same for the LEFT table.
	if _, err := sess.Query(q); err != nil { // warm the cache again
		t.Fatal(err)
	}
	if _, err := other.Exec(`DROP TABLE d; CREATE TABLE d (g bigint, f double precision); INSERT INTO d VALUES (0, 1.5)`); err != nil {
		t.Fatal(err)
	}
	third, err := sess.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if sess.LastTiming().CacheHit {
		t.Fatal("stale join plan was executed from the cache after left-table DDL")
	}
	if got := third.Rows[0][0]; got != int64(1) {
		t.Fatalf("replanned join count = %v, want 1", got)
	}
}

// TestNullBatchLaneDifferential pins the NULL-aware kernels against the
// row-lane oracle over a LEFT JOIN source: dims rows match d.g 0..4, so
// d.g 5 and 6 carry NULL dims columns. Covers NULL-skipping aggregates,
// NULL-in-arithmetic (NULL propagates and never faults, even over a
// zero divisor), NULL-compare edges (false in predicate position, float
// domain for nullable numeric compares), columnar projection boxing
// NULLs, DISTINCT with NULL keys, and the vectorized window gather.
func TestNullBatchLaneDifferential(t *testing.T) {
	db := newJoinDiffDB(t, 700)
	batchSess := NewSession(db)
	rowSess := NewSession(db)
	rowSess.SetBatchExecution(false)
	const lj = ` FROM d LEFT JOIN dims ON d.g = dims.g`
	aggQueries := []string{
		// NULL-skipping folds: count(expr) counts only non-NULL rows.
		`SELECT count(*), count(dims.g), count(dims.name)` + lj,
		`SELECT sum(dims.g), avg(dims.g), min(dims.g), max(dims.g)` + lj,
		`SELECT min(dims.name), max(dims.name)` + lj,
		// NULL in arithmetic: NULL + x stays NULL and the fold skips it.
		`SELECT sum(dims.g + 1), sum(dims.g * d.i), avg(dims.g / 2.0)` + lj,
		// A NULL operand wins over a zero divisor — no fault on the
		// padded rows (d.g > 4 selects only unmatched rows).
		`SELECT sum(d.i / dims.g)` + lj + ` WHERE d.g > 4`,
		`SELECT sum(dims.g / 0), sum(dims.g % 0)` + lj + ` WHERE d.g > 4`,
		// NULL compares are false in predicate position; NOT is
		// two-valued, so NOT (NULL < 3) flips back to true. NULL never
		// equals itself.
		`SELECT count(*)` + lj + ` WHERE dims.g < 3`,
		`SELECT count(*)` + lj + ` WHERE NOT (dims.g < 3)`,
		`SELECT count(*)` + lj + ` WHERE dims.g = dims.g`,
		`SELECT count(*)` + lj + ` WHERE dims.name >= 'g2' OR d.b`,
		// Nullable numeric compares run in the float domain on both
		// lanes, even int vs int at int64 extremes.
		`SELECT count(*)` + lj + ` WHERE dims.g < d.i`,
		`SELECT count(*)` + lj + ` WHERE d.i <= dims.g AND d.i > 9223372036854775000`,
		// Grouped (nullable GROUP BY keys are rejected at plan time, so
		// keys come from d): folds skip NULLs per group, and groups whose
		// rows are all unmatched fold to NULL results.
		`SELECT d.s, count(dims.g), sum(dims.g), min(dims.name)` + lj + ` GROUP BY d.s`,
		`SELECT d.g, avg(dims.g)` + lj + ` GROUP BY d.g`,
		// HAVING over a NULL-skipping aggregate: an all-NULL group's sum
		// is NULL, which HAVING treats as not kept.
		`SELECT d.g, sum(dims.g)` + lj + ` GROUP BY d.g HAVING sum(dims.g) >= 0`,
	}
	for _, q := range aggQueries {
		if !runDiffQuery(t, batchSess, rowSess, q) {
			t.Fatalf("query %q should plan the batch lane", q)
		}
	}
	scanQueries := []string{
		// Columnar projection boxes NULL where the validity lane is false.
		`SELECT d.i, dims.g, dims.name` + lj + ` ORDER BY d.i, d.s LIMIT 60`,
		`SELECT dims.g + d.i, dims.g * 2` + lj + ` WHERE d.f > 0 ORDER BY 1, d.i LIMIT 40`,
		// Unordered: morsel-order concatenation must reproduce the row
		// lane's segment-order output exactly.
		`SELECT d.g, dims.name` + lj + ` WHERE d.f >= 0`,
		// NULL sorts first and dedupes as a single value.
		`SELECT DISTINCT dims.name` + lj + ` ORDER BY dims.name`,
		`SELECT DISTINCT dims.g, d.b` + lj + ` WHERE d.f > -100 ORDER BY dims.g, d.b`,
	}
	for _, q := range scanQueries {
		runDiffQuery(t, batchSess, rowSess, q)
	}
	windowQueries := []string{
		// Vectorized gather over the nullable source; NULL partition keys
		// and NULL aggregate arguments flow through the fold.
		`SELECT d.g, sum(dims.g) OVER (PARTITION BY dims.name ORDER BY d.i, d.s)` + lj + ` ORDER BY 1, 2 LIMIT 80`,
		`SELECT d.i, count(dims.name) OVER (PARTITION BY d.g ORDER BY d.i, d.s)` + lj + ` ORDER BY 1, 2 LIMIT 80`,
		// No outer ORDER BY: gather order itself must match the staged
		// row-lane order, ties included.
		`SELECT d.g, row_number() OVER (PARTITION BY dims.g ORDER BY d.i)` + lj + ` WHERE d.f > 0 LIMIT 120`,
	}
	for _, q := range windowQueries {
		st, err := ParseStatement(q)
		if err != nil {
			t.Fatal(err)
		}
		if pl, err := batchSess.planStmt(st); err == nil {
			if wp, ok := pl.(*windowPlan); !ok || wp.batch == nil {
				t.Fatalf("query %q should plan the vectorized window gather", q)
			}
		}
		runDiffQuery(t, batchSess, rowSess, q)
	}
}

// TestBatchLaneMultiBatchMorsels re-runs the core vectorized shapes
// over a table whose morsels span several ColBatches (>BatchSize rows
// per segment): per-morsel buffers must accumulate across a morsel's
// batches, not reset. Regression — the window gather once kept only
// each morsel's last batch, which a single-batch-per-morsel fixture
// cannot catch.
func TestBatchLaneMultiBatchMorsels(t *testing.T) {
	db := newJoinDiffDB(t, 5000) // 3 segments, ~1667 rows each: 2 batches per morsel
	batchSess := NewSession(db)
	rowSess := NewSession(db)
	rowSess.SetBatchExecution(false)
	const lj = ` FROM d LEFT JOIN dims ON d.g = dims.g`
	for _, q := range []string{
		`SELECT d.i, row_number() OVER (PARTITION BY d.g ORDER BY d.i, d.s) FROM d ORDER BY d.i, d.s LIMIT 30`,
		`SELECT d.i, sum(dims.g) OVER (PARTITION BY dims.name ORDER BY d.i, d.s)` + lj + ` ORDER BY 1, 2 LIMIT 30`,
		`SELECT d.g, dims.name` + lj + ` WHERE d.f > 0`,
		`SELECT DISTINCT dims.name` + lj + ` ORDER BY dims.name`,
		`SELECT d.g, count(dims.g)` + lj + ` WHERE d.b GROUP BY d.g ORDER BY d.g`,
	} {
		runDiffQuery(t, batchSess, rowSess, q)
	}
}

// withGOMAXPROCS forces the engine's worker-pool mode (raising
// GOMAXPROCS above NumCPU is legal), restoring the setting afterwards.
func withGOMAXPROCS(t *testing.T, n int) {
	t.Helper()
	prev := runtime.GOMAXPROCS(n)
	t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
}

// TestJoinedBatchLaneDifferential runs inner-joined aggregates and
// filtered joined scans on both lanes — the batch session must actually
// plan the vectorized lane for the aggregate shapes — including the
// division-by-zero and overflow edges over the join output.
func TestJoinedBatchLaneDifferential(t *testing.T) {
	db := newJoinDiffDB(t, 600)
	batchSess := NewSession(db)
	rowSess := NewSession(db)
	rowSess.SetBatchExecution(false)
	aggQueries := []string{
		`SELECT count(*) FROM d JOIN dims ON d.g = dims.g`,
		`SELECT dims.name, sum(d.f), count(*) FROM d JOIN dims ON d.g = dims.g GROUP BY dims.name`,
		`SELECT dims.name, avg(d.i), min(d.s) FROM d JOIN dims ON d.g = dims.g WHERE d.f > 0 GROUP BY dims.name`,
		`SELECT sum(d.f * 2), max(abs(d.i % 97)) FROM d JOIN dims ON d.g = dims.g WHERE d.b`,
		`SELECT min(dims.name), max(dims.name) FROM d JOIN dims ON d.g = dims.g`,
		`SELECT sum(d.i * d.i), min(d.i + d.i) FROM d JOIN dims ON d.g = dims.g`,
		`SELECT count(*) FROM d JOIN dims ON d.g = dims.g WHERE d.i <> 0 AND 100 / d.i > 2`,
	}
	for _, q := range aggQueries {
		if !runDiffQuery(t, batchSess, rowSess, q) {
			t.Fatalf("query %q should plan the batch lane over the join", q)
		}
	}
	// Error edges must agree over the joined source too (both lanes
	// error identically, so no lane assertion).
	runDiffQuery(t, batchSess, rowSess, `SELECT sum(10 / d.i) FROM d JOIN dims ON d.g = dims.g`)
	runDiffQuery(t, batchSess, rowSess, `SELECT d.g, sum(1 / d.i) FROM d JOIN dims ON d.g = dims.g GROUP BY d.g`)
	scanQueries := []string{
		`SELECT d.i, dims.name FROM d JOIN dims ON d.g = dims.g WHERE d.f > 0 ORDER BY d.i, d.s, dims.name LIMIT 40`,
		`SELECT d.g, d.f FROM d JOIN dims ON d.g = dims.g WHERE d.i % 2 = 0 ORDER BY 2, 1 LIMIT 25`,
	}
	for _, q := range scanQueries {
		runDiffQuery(t, batchSess, rowSess, q)
	}
}

// TestParallelLaneDifferential reruns the differential edge queries with
// the worker pool engaged (tables above engine.ParallelRowThreshold,
// GOMAXPROCS raised), so the morsel scheduler is exercised under the
// differential oracle — and pins that ORDER BY output is deterministic
// across repeated parallel executions, including tie groups, which must
// stay in segment order.
func TestParallelLaneDifferential(t *testing.T) {
	rows := engine.ParallelRowThreshold + 1500
	db := newJoinDiffDB(t, rows)
	withGOMAXPROCS(t, 4)
	batchSess := NewSession(db)
	rowSess := NewSession(db)
	rowSess.SetBatchExecution(false)
	queries := []string{
		`SELECT g, avg(f), count(*) FROM d WHERE f > 0.25 GROUP BY g`,
		`SELECT sum(i * i), min(i + i), max(i - 1 + i) FROM d`,
		`SELECT sum(10 / i) FROM d`,
		`SELECT count(*) FROM d WHERE i <> 0 AND 100 / i > 2`,
		`SELECT s, stddev(f), variance(i) FROM d WHERE s <> 's0' GROUP BY s`,
		`SELECT min(s), max(s) FROM d WHERE b`,
		`SELECT dims.name, sum(d.f) FROM d JOIN dims ON d.g = dims.g GROUP BY dims.name`,
		`SELECT i, f, s FROM d WHERE f > 10 AND i % 2 = 0 ORDER BY i, s LIMIT 50`,
	}
	for _, q := range queries {
		runDiffQuery(t, batchSess, rowSess, q)
	}
	// Determinism: repeated parallel executions of an ORDER BY query with
	// heavy ties must produce byte-identical output.
	ordered := []string{
		`SELECT i, f, s FROM d WHERE f >= 0 ORDER BY g LIMIT 200`,
		`SELECT g, count(*) c FROM d GROUP BY g ORDER BY c DESC, g`,
	}
	for _, q := range ordered {
		want, err := batchSess.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 10; trial++ {
			got, err := batchSess.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			if formatResult(got) != formatResult(want) {
				t.Fatalf("query %q: parallel execution %d diverged\n--- want ---\n%s\n--- got ---\n%s",
					q, trial, formatResult(want), formatResult(got))
			}
		}
	}
}

// joinTempCount counts the join-materialization temp tables currently
// in the catalog.
func joinTempCount(db *engine.DB) int {
	n := 0
	for _, name := range db.TableNames() {
		if strings.HasPrefix(name, "sql_join") {
			n++
		}
	}
	return n
}

// TestJoinMaterializationCache pins the cached-join semantics: a second
// execution of a cached plan reuses the materialized join table, an
// INSERT into either input invalidates it, results are identical on hit
// and miss, and releasing the plan (DDL invalidation) drops the temp
// table from the catalog.
func TestJoinMaterializationCache(t *testing.T) {
	db := newJoinDiffDB(t, 300)
	sess := NewSession(db)
	const q = `SELECT dims.name, sum(d.f) FROM d JOIN dims ON d.g = dims.g GROUP BY dims.name ORDER BY dims.name`
	first, err := sess.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	pl, ok := sess.plans.get(q)
	if !ok {
		t.Fatal("plan not cached")
	}
	j := pl.(*aggPlan).src.join
	if j == nil {
		t.Fatal("no join source")
	}
	j.mu.Lock()
	mat1 := j.cached
	j.mu.Unlock()
	if mat1 == nil {
		t.Fatal("first execution did not cache the join materialization")
	}
	second, err := sess.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	j.mu.Lock()
	mat2 := j.cached
	j.mu.Unlock()
	if mat2 != mat1 {
		t.Fatal("second execution rebuilt the join despite unchanged inputs")
	}
	if formatResult(first) != formatResult(second) {
		t.Fatalf("cache hit changed the result:\n%s\nvs\n%s", formatResult(first), formatResult(second))
	}
	// INSERT into the left input invalidates.
	if _, err := sess.Exec(`INSERT INTO d VALUES (0, 1, 100.5, 's1', true, {1})`); err != nil {
		t.Fatal(err)
	}
	third, err := sess.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	j.mu.Lock()
	mat3 := j.cached
	j.mu.Unlock()
	if mat3 == mat1 {
		t.Fatal("INSERT into the probe side did not invalidate the cached join")
	}
	if formatResult(third) == formatResult(first) {
		t.Fatal("rebuilt join should reflect the inserted row")
	}
	// INSERT into the right input invalidates too.
	if _, err := sess.Exec(`INSERT INTO dims VALUES (6, 'g6')`); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Query(q); err != nil {
		t.Fatal(err)
	}
	j.mu.Lock()
	mat4 := j.cached
	j.mu.Unlock()
	if mat4 == mat3 {
		t.Fatal("INSERT into the build side did not invalidate the cached join")
	}
	if joinTempCount(db) != 1 {
		t.Fatalf("stale materializations must be dropped: %d join temps in catalog", joinTempCount(db))
	}
	// DDL invalidates the plan cache and must release the materialization.
	if _, err := sess.Exec(`CREATE TABLE unrelated (x bigint)`); err != nil {
		t.Fatal(err)
	}
	if joinTempCount(db) != 0 {
		t.Fatalf("plan release leaked %d join temp table(s)", joinTempCount(db))
	}
}

// TestJoinMaterializationOneShotRelease proves plans that never enter
// the plan cache (Session.Run, multi-statement Exec) drop their
// materialization after executing.
func TestJoinMaterializationOneShotRelease(t *testing.T) {
	db := newJoinDiffDB(t, 200)
	sess := NewSession(db)
	st, err := ParseStatement(`SELECT count(*) FROM d JOIN dims ON d.g = dims.g`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(st); err != nil {
		t.Fatal(err)
	}
	if joinTempCount(db) != 0 {
		t.Fatalf("one-shot plan leaked %d join temp table(s)", joinTempCount(db))
	}
	// Prepared statements keep their materialization until DEALLOCATE.
	if _, err := sess.Exec(`PREPARE pj AS SELECT count(*) FROM d JOIN dims ON d.g = dims.g`); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Query(`EXECUTE pj`); err != nil {
		t.Fatal(err)
	}
	if joinTempCount(db) != 1 {
		t.Fatalf("prepared plan should hold one materialization, found %d", joinTempCount(db))
	}
	if _, err := sess.Exec(`DEALLOCATE pj`); err != nil {
		t.Fatal(err)
	}
	if joinTempCount(db) != 0 {
		t.Fatalf("DEALLOCATE leaked %d join temp table(s)", joinTempCount(db))
	}
}

// TestSessionCloseReleasesMaterializations proves Close drops every
// plan-owned join materialization — short-lived sessions over a shared
// database must not pin temp tables in the catalog.
func TestSessionCloseReleasesMaterializations(t *testing.T) {
	db := newJoinDiffDB(t, 200)
	for i := 0; i < 3; i++ {
		sess := NewSession(db)
		if _, err := sess.Query(`SELECT count(*) FROM d JOIN dims ON d.g = dims.g`); err != nil {
			t.Fatal(err)
		}
		if _, err := sess.Exec(`PREPARE pj AS SELECT d.g, count(*) FROM d JOIN dims ON d.g = dims.g GROUP BY d.g`); err != nil {
			t.Fatal(err)
		}
		if _, err := sess.Query(`EXECUTE pj`); err != nil {
			t.Fatal(err)
		}
		if joinTempCount(db) != 2 {
			t.Fatalf("expected 2 live materializations before Close, got %d", joinTempCount(db))
		}
		sess.Close()
		if joinTempCount(db) != 0 {
			t.Fatalf("Close leaked %d join temp table(s)", joinTempCount(db))
		}
	}
}

// TestJoinMaterializationConcurrentExecutions hammers one cached joined
// plan from several goroutines, invalidating (serialized) between
// rounds — under -race this exercises the single-flight rebuild and
// ensures concurrent misses converge on one materialization.
func TestJoinMaterializationConcurrentExecutions(t *testing.T) {
	withGOMAXPROCS(t, 4)
	db := newJoinDiffDB(t, 300)
	sess := NewSession(db)
	const q = `SELECT dims.name, count(*) FROM d JOIN dims ON d.g = dims.g GROUP BY dims.name ORDER BY dims.name`
	want, err := sess.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		// Serialized mutation: invalidates the materialization (and,
		// being an INSERT into d, changes one group's count).
		if _, err := sess.Exec(`INSERT INTO d VALUES (0, 1, 5.5, 's1', true, {1})`); err != nil {
			t.Fatal(err)
		}
		want, err = sess.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		errs := make([]error, 4)
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for k := 0; k < 5; k++ {
					got, err := sess.Query(q)
					if err != nil {
						errs[w] = err
						return
					}
					if formatResult(got) != formatResult(want) {
						errs[w] = fmt.Errorf("concurrent execution diverged:\n%s\nvs\n%s",
							formatResult(got), formatResult(want))
						return
					}
				}
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
		if n := joinTempCount(db); n != 1 {
			t.Fatalf("round %d: expected exactly 1 live materialization, got %d", round, n)
		}
	}
}
