package sql

import (
	"container/list"
	"context"
	"log/slog"
	"sort"
	"sync"
	"time"

	"madlib/internal/engine"
)

// planCacheSize bounds the per-session plan cache (LRU eviction).
const planCacheSize = 256

// Timing breaks one statement's wall time into the pipeline phases. The
// point of the plan cache is that Parse and Plan collapse to zero on
// repeated statements; \timing in the REPL prints this breakdown.
type Timing struct {
	Parse time.Duration
	Plan  time.Duration
	Exec  time.Duration
	// CacheHit reports whether a cached or prepared plan was reused.
	CacheHit bool
}

// Total returns the summed phase time.
func (t Timing) Total() time.Duration { return t.Parse + t.Plan + t.Exec }

// Prepared is one PREPARE'd statement of a session.
type Prepared struct {
	// Name is the statement's name (lowercased).
	Name string
	// Text is the inner statement's SQL source.
	Text string
	// NumParams is the number of $n parameters EXECUTE must supply.
	NumParams int

	stmt Statement
	plan stmtPlan
}

// cacheEntry is one LRU plan-cache slot.
type cacheEntry struct {
	key  string
	plan stmtPlan
}

// planCache is a text-keyed LRU of statement plans.
type planCache struct {
	entries map[string]*list.Element
	order   *list.List // front = most recently used
}

func newPlanCache() *planCache {
	return &planCache{entries: make(map[string]*list.Element), order: list.New()}
}

func (c *planCache) get(key string) (stmtPlan, bool) {
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).plan, true
}

// put stores a plan and returns the plans it displaced (a replaced
// same-key plan and/or the LRU eviction victim) so the session can
// release their resources.
func (c *planCache) put(key string, plan stmtPlan) []stmtPlan {
	var displaced []stmtPlan
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		if e.plan != plan {
			displaced = append(displaced, e.plan)
		}
		e.plan = plan
		c.order.MoveToFront(el)
		return displaced
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, plan: plan})
	if c.order.Len() > planCacheSize {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		e := oldest.Value.(*cacheEntry)
		delete(c.entries, e.key)
		displaced = append(displaced, e.plan)
	}
	return displaced
}

// remove evicts one entry, returning the removed plan (nil if absent).
func (c *planCache) remove(key string) stmtPlan {
	el, ok := c.entries[key]
	if !ok {
		return nil
	}
	c.order.Remove(el)
	delete(c.entries, key)
	return el.Value.(*cacheEntry).plan
}

// clear drops every entry, returning the removed plans.
func (c *planCache) clear() []stmtPlan {
	removed := make([]stmtPlan, 0, len(c.entries))
	for _, el := range c.entries {
		removed = append(removed, el.Value.(*cacheEntry).plan)
	}
	c.entries = make(map[string]*list.Element)
	c.order.Init()
	return removed
}

// Session executes SQL against an engine database. A session owns a
// text-keyed LRU plan cache and the statements created with PREPARE, so
// repeated statements skip parsing and planning entirely; both stores are
// invalidated when DDL changes the catalog (and every plan additionally
// revalidates its table bindings before running, so even DDL issued
// through another session cannot make it execute stale). Sessions are
// safe for concurrent use.
type Session struct {
	db *engine.DB
	// metrics are the session's observability counters; they live in the
	// database's registry, so all sessions over one database share them.
	metrics *sessionMetrics

	mu       sync.Mutex
	plans    *planCache
	prepared map[string]*Prepared
	last     Timing
	batchOff bool
	// Structured query log (SetQueryLog) and the recent-statement ring
	// backing the madlib_stats_queries system view.
	logger     *slog.Logger
	slowThan   time.Duration
	recent     []QueryStat
	recentNext int
}

// NewSession wraps an engine database with the SQL front-end.
func NewSession(db *engine.DB) *Session {
	return &Session{
		db:       db,
		metrics:  newSessionMetrics(db.Metrics()),
		plans:    newPlanCache(),
		prepared: make(map[string]*Prepared),
	}
}

// DB returns the underlying engine database.
func (s *Session) DB() *engine.DB { return s.db }

// Close empties the session's plan cache and prepared-statement store,
// releasing every plan-owned catalog resource (cached join
// materializations). The session stays usable afterwards — Close only
// clears its caches — but callers that create short-lived sessions
// over a shared, long-lived database should Close them, or abandoned
// sessions pin their materialized join temp tables in the catalog for
// the life of the process.
func (s *Session) Close() {
	s.mu.Lock()
	dropped := s.plans.clear()
	for _, p := range s.prepared {
		if p.plan != nil {
			dropped = append(dropped, p.plan)
		}
	}
	s.prepared = make(map[string]*Prepared)
	s.mu.Unlock()
	s.releasePlans(dropped)
}

// SetBatchExecution toggles the vectorized column-batch lane. It is on
// by default; turning it off forces every plan onto the per-row lane
// (the semantic oracle), which the differential tests and the
// batch-vs-row benchmarks use. Toggling clears the plan cache and marks
// prepared statements for replanning, so no cached or prepared plan can
// keep the previous lane.
func (s *Session) SetBatchExecution(enabled bool) {
	s.mu.Lock()
	s.batchOff = !enabled
	dropped := s.plans.clear()
	for _, p := range s.prepared {
		if p.plan != nil {
			dropped = append(dropped, p.plan)
		}
		p.plan = nil
	}
	s.mu.Unlock()
	s.releasePlans(dropped)
}

// releasePlans releases displaced plans' catalog resources (cached join
// materializations). Called outside s.mu — release only touches engine
// state.
func (s *Session) releasePlans(plans []stmtPlan) {
	for _, pl := range plans {
		if pl != nil {
			pl.release(s.db)
		}
	}
}

// batchEnabled reports whether the planner may choose the batch lane.
func (s *Session) batchEnabled() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.batchOff
}

// LastTiming returns the phase breakdown of the most recently executed
// statement (for a multi-statement Exec, the batch's totals with the
// cache-hit flag of its last statement).
func (s *Session) LastTiming() Timing {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.last
}

func (s *Session) setTiming(t Timing) {
	s.mu.Lock()
	s.last = t
	s.mu.Unlock()
}

// cachedPlan returns a still-valid cached plan for the statement text.
// Stale plans (table dropped or re-created since planning) are evicted
// and released.
func (s *Session) cachedPlan(text string) (stmtPlan, bool) {
	s.mu.Lock()
	pl, ok := s.plans.get(text)
	if ok && !pl.valid(s.db) {
		s.plans.remove(text)
		s.mu.Unlock()
		s.metrics.planEvictions.Inc()
		pl.release(s.db)
		return nil, false
	}
	s.mu.Unlock()
	if ok {
		s.metrics.planHits.Inc()
	}
	return pl, ok
}

func (s *Session) cachePlan(text string, pl stmtPlan) {
	s.mu.Lock()
	displaced := s.plans.put(text, pl)
	s.mu.Unlock()
	s.metrics.planMisses.Inc()
	s.metrics.planEvictions.Add(int64(len(displaced)))
	s.releasePlans(displaced)
}

// invalidatePlans drops every cached plan; called on DDL. Prepared
// statements survive DDL (they replan on demand when their bindings go
// stale, like PostgreSQL's).
func (s *Session) invalidatePlans() {
	s.mu.Lock()
	dropped := s.plans.clear()
	s.mu.Unlock()
	s.metrics.planInvalid.Add(int64(len(dropped)))
	s.releasePlans(dropped)
}

// Exec parses and runs every statement in text, returning one Result per
// statement. Execution stops at the first error; already-completed
// results are returned alongside it. Single-statement texts hit the plan
// cache: the second execution of the same SELECT/INSERT skips parse and
// plan entirely.
func (s *Session) Exec(text string) ([]*Result, error) {
	return s.ExecContext(context.Background(), text)
}

// ExecContext is Exec under a context: cancellation or deadline expiry
// stops running scans at morsel boundaries and aborts the remaining
// statements.
func (s *Session) ExecContext(ctx context.Context, text string) ([]*Result, error) {
	t0 := time.Now()
	if pl, ok := s.cachedPlan(text); ok {
		r, err := pl.exec(s, &execEnv{ctx: ctx})
		tm := Timing{Exec: time.Since(t0), CacheHit: true}
		s.setTiming(tm)
		if err != nil {
			return nil, err
		}
		s.observe(text, pl, r, tm)
		return []*Result{r}, nil
	}
	stmts, err := Parse(text)
	if err != nil {
		return nil, err
	}
	parseD := time.Since(t0)
	cacheKey := ""
	if len(stmts) == 1 {
		cacheKey = text
	}
	var out []*Result
	total := Timing{Parse: parseD}
	for _, st := range stmts {
		r, tm, err := s.runTimed(ctx, st, cacheKey)
		total.Plan += tm.Plan
		total.Exec += tm.Exec
		total.CacheHit = tm.CacheHit
		if err != nil {
			s.setTiming(total)
			return out, err
		}
		out = append(out, r)
	}
	s.setTiming(total)
	return out, nil
}

// Query runs a single statement and requires it to produce a rowset.
func (s *Session) Query(text string) (*Result, error) {
	return s.QueryContext(context.Background(), text)
}

// QueryContext is Query under a context (see ExecContext).
func (s *Session) QueryContext(ctx context.Context, text string) (*Result, error) {
	t0 := time.Now()
	if pl, ok := s.cachedPlan(text); ok {
		r, err := pl.exec(s, &execEnv{ctx: ctx})
		tm := Timing{Exec: time.Since(t0), CacheHit: true}
		s.setTiming(tm)
		if err != nil {
			return nil, err
		}
		s.observe(text, pl, r, tm)
		if len(r.Cols) == 0 {
			return nil, ErrNoRows
		}
		return r, nil
	}
	st, err := ParseStatement(text)
	if err != nil {
		return nil, err
	}
	parseD := time.Since(t0)
	r, tm, err := s.runTimed(ctx, st, text)
	tm.Parse = parseD
	s.setTiming(tm)
	if err != nil {
		return nil, err
	}
	if len(r.Cols) == 0 {
		return nil, ErrNoRows
	}
	return r, nil
}

// Run executes one parsed statement. Statements run this way are planned
// fresh (there is no source text to cache under); prepared statements and
// EXECUTE still work.
func (s *Session) Run(st Statement) (*Result, error) {
	return s.RunContext(context.Background(), st)
}

// RunContext is Run under a context (see ExecContext).
func (s *Session) RunContext(ctx context.Context, st Statement) (*Result, error) {
	r, tm, err := s.runTimed(ctx, st, "")
	s.setTiming(tm)
	return r, err
}

// runTimed plans (or reuses) and executes one statement, reporting the
// plan/exec phase split. cacheKey, when non-empty, is the statement's
// exact source text and enables plan caching for SELECT/INSERT.
func (s *Session) runTimed(ctx context.Context, st Statement, cacheKey string) (*Result, Timing, error) {
	t0 := time.Now()
	var tm Timing
	switch x := st.(type) {
	case *CreateTable:
		s.invalidatePlans()
		r, err := s.execCreate(x)
		tm.Exec = time.Since(t0)
		return r, tm, err
	case *CreateTableAs:
		s.invalidatePlans()
		r, err := s.execCreateTableAs(x)
		tm.Exec = time.Since(t0)
		return r, tm, err
	case *DropTable:
		s.invalidatePlans()
		r, err := s.execDrop(x)
		tm.Exec = time.Since(t0)
		return r, tm, err
	case *Prepare:
		r, err := s.execPrepare(x)
		tm.Plan = time.Since(t0)
		return r, tm, err
	case *Execute:
		return s.execExecute(ctx, x)
	case *Deallocate:
		r, err := s.execDeallocate(x)
		tm.Exec = time.Since(t0)
		return r, tm, err
	case *Explain:
		return s.execExplain(x)
	case *Select, *Insert:
		if n := stmtMaxParam(st); n > 0 {
			return nil, tm, execErrf("query uses parameter $%d; bind values with PREPARE ... / EXECUTE", n)
		}
		pl, err := s.planStmt(st)
		if err != nil {
			return nil, tm, err
		}
		tm.Plan = time.Since(t0)
		if cacheKey != "" {
			s.cachePlan(cacheKey, pl)
		}
		tExec := time.Now()
		r, err := pl.exec(s, &execEnv{ctx: ctx})
		tm.Exec = time.Since(tExec)
		if cacheKey == "" {
			// One-shot plan (Run, multi-statement Exec): nothing holds it
			// after this execution, so free its cached materializations.
			pl.release(s.db)
		}
		if err == nil {
			text := cacheKey
			if text == "" {
				text = st.String()
			}
			s.observe(text, pl, r, tm)
		}
		return r, tm, err
	}
	return nil, tm, execErrf("unsupported statement %T", st)
}

// execPrepare plans the inner statement and stores it under its name.
func (s *Session) execPrepare(st *Prepare) (*Result, error) {
	pl, err := s.planStmt(st.Stmt)
	if err != nil {
		return nil, err
	}
	p := &Prepared{
		Name:      st.Name,
		Text:      st.Text,
		NumParams: stmtMaxParam(st.Stmt),
		stmt:      st.Stmt,
		plan:      pl,
	}
	// Check-and-store under one critical section, so concurrent PREPAREs
	// of the same name cannot both succeed.
	s.mu.Lock()
	_, dup := s.prepared[st.Name]
	if !dup {
		s.prepared[st.Name] = p
	}
	s.mu.Unlock()
	if dup {
		return nil, execErrf("prepared statement %q already exists", st.Name)
	}
	return &Result{Tag: "PREPARE"}, nil
}

// execExecute runs a prepared statement with bound parameter values. If
// the plan's table bindings went stale (DROP + re-CREATE since PREPARE),
// the statement is replanned against the current catalog first.
func (s *Session) execExecute(ctx context.Context, st *Execute) (*Result, Timing, error) {
	var tm Timing
	params := make([]any, len(st.Args))
	for i, a := range st.Args {
		v, err := evalExpr(a, &evalCtx{})
		if err != nil {
			return nil, tm, execErrf("EXECUTE parameter $%d: %v", i+1, err)
		}
		params[i] = v
	}
	return s.executePrepared(ctx, st.Name, params, st.String())
}

// ExecutePreparedContext runs a prepared statement with already-evaluated
// parameter values — the extended-query protocol's Bind/Execute path,
// where parameters arrive as wire values rather than SQL expressions.
func (s *Session) ExecutePreparedContext(ctx context.Context, name string, params []any) (*Result, error) {
	r, tm, err := s.executePrepared(ctx, name, params, "EXECUTE "+name)
	s.setTiming(tm)
	return r, err
}

func (s *Session) executePrepared(ctx context.Context, name string, params []any, obsText string) (*Result, Timing, error) {
	var tm Timing
	s.mu.Lock()
	p, ok := s.prepared[name]
	var pl stmtPlan
	if ok {
		pl = p.plan
	}
	s.mu.Unlock()
	if !ok {
		return nil, tm, execErrf("prepared statement %q does not exist", name)
	}
	if len(params) != p.NumParams {
		return nil, tm, execErrf("wrong number of parameters for prepared statement %q: want %d, got %d",
			p.Name, p.NumParams, len(params))
	}
	t0 := time.Now()
	tm.CacheHit = true
	if pl == nil || !pl.valid(s.db) {
		var err error
		pl, err = s.planStmt(p.stmt)
		if err != nil {
			return nil, tm, err
		}
		// Swap under the lock and release whatever we actually displaced:
		// a concurrent EXECUTE may have installed its own replan between
		// our snapshot and now, and that plan must not leak its cached
		// materialization (releasing it mid-execution is safe — an
		// in-flight acquire sees the released flag and drops per-run).
		// If a concurrent DEALLOCATE removed the Prepared entirely, the
		// new plan must not be installed on the orphaned struct: run it
		// this once and release it when done.
		s.mu.Lock()
		orphaned := s.prepared[name] != p
		var displaced stmtPlan
		if !orphaned {
			displaced = p.plan
			p.plan = pl
		}
		s.mu.Unlock()
		if displaced != nil && displaced != pl {
			displaced.release(s.db)
		}
		if orphaned {
			defer pl.release(s.db)
		}
		tm.CacheHit = false
		s.metrics.replans.Inc()
	}
	tm.Plan = time.Since(t0)
	tExec := time.Now()
	r, err := pl.exec(s, &execEnv{params: params, ctx: ctx})
	tm.Exec = time.Since(tExec)
	if err == nil {
		s.observe(obsText, pl, r, tm)
	}
	return r, tm, err
}

// DescribePrepared reports a prepared statement's parameter count and
// output column names (nil for statements that return no rows), the
// metadata the extended-query protocol's Describe message needs for
// ParameterDescription and RowDescription.
func (s *Session) DescribePrepared(name string) (numParams int, cols []string, err error) {
	s.mu.Lock()
	p, ok := s.prepared[name]
	var pl stmtPlan
	if ok {
		pl = p.plan
		numParams = p.NumParams
	}
	s.mu.Unlock()
	if !ok {
		return 0, nil, execErrf("prepared statement %q does not exist", name)
	}
	if pl != nil {
		cols = pl.columns()
	}
	return numParams, cols, nil
}

func (s *Session) execDeallocate(st *Deallocate) (*Result, error) {
	s.mu.Lock()
	var dropped []stmtPlan
	if st.All {
		for _, p := range s.prepared {
			dropped = append(dropped, p.plan)
		}
		s.prepared = make(map[string]*Prepared)
		s.mu.Unlock()
		s.releasePlans(dropped)
		return &Result{Tag: "DEALLOCATE ALL"}, nil
	}
	p, ok := s.prepared[st.Name]
	if !ok {
		s.mu.Unlock()
		return nil, execErrf("prepared statement %q does not exist", st.Name)
	}
	delete(s.prepared, st.Name)
	s.mu.Unlock()
	s.releasePlans([]stmtPlan{p.plan})
	return &Result{Tag: "DEALLOCATE"}, nil
}

// PreparedStatements lists the session's prepared statements sorted by
// name (for the REPL's \prepare).
func (s *Session) PreparedStatements() []Prepared {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Prepared, 0, len(s.prepared))
	for _, p := range s.prepared {
		out = append(out, Prepared{Name: p.Name, Text: p.Text, NumParams: p.NumParams})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
