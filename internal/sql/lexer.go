package sql

import (
	"fmt"
	"strings"
)

// TokenKind enumerates lexical token classes.
type TokenKind int

// Token kinds. Keywords are not distinguished at the lexical level: SQL
// keywords are not reserved here, so `SELECT count(*) FROM count` works;
// the parser matches identifiers case-insensitively where it expects a
// keyword.
const (
	TokEOF TokenKind = iota
	// TokIdent is an identifier or keyword (count, SELECT, my_table).
	TokIdent
	// TokNumber is a numeric literal (12, 3.5, 1e-3).
	TokNumber
	// TokString is a single-quoted string literal with '' escaping.
	TokString
	// TokOp is an operator or punctuation: ( ) , ; . * + - / % = < >
	// <= >= <> != { } [ ].
	TokOp
	// TokParam is a $n parameter placeholder; Text holds the digits.
	TokParam
)

func (k TokenKind) String() string {
	switch k {
	case TokEOF:
		return "end of input"
	case TokIdent:
		return "identifier"
	case TokNumber:
		return "number"
	case TokString:
		return "string"
	case TokOp:
		return "operator"
	case TokParam:
		return "parameter"
	}
	return fmt.Sprintf("token(%d)", int(k))
}

// Token is one lexical unit with its source position (for error messages).
type Token struct {
	Kind TokenKind
	// Text is the raw token text. For TokString it is the unquoted,
	// unescaped value; for TokIdent the original spelling.
	Text string
	// Pos is the byte offset of the token's first character.
	Pos int
}

// IsKeyword reports whether the token is an identifier matching the given
// keyword case-insensitively.
func (t Token) IsKeyword(kw string) bool {
	return t.Kind == TokIdent && strings.EqualFold(t.Text, kw)
}

// ErrSyntax wraps lexical and grammatical errors with position context.
type ErrSyntax struct {
	Pos int
	Msg string
}

func (e *ErrSyntax) Error() string { return fmt.Sprintf("syntax error at offset %d: %s", e.Pos, e.Msg) }

func syntaxErrf(pos int, format string, args ...any) error {
	return &ErrSyntax{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// Lex tokenizes a SQL text. It handles identifiers, numbers (integer,
// decimal, scientific), single-quoted strings with ” escapes, `--` line
// comments, $n parameter placeholders, and multi-character operators.
func Lex(input string) ([]Token, error) {
	var toks []Token
	i, n := 0, len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-':
			// Line comment: skip to end of line.
			for i < n && input[i] != '\n' {
				i++
			}
		case isIdentStart(c):
			start := i
			for i < n && isIdentPart(input[i]) {
				i++
			}
			toks = append(toks, Token{Kind: TokIdent, Text: input[start:i], Pos: start})
		case c >= '0' && c <= '9' || (c == '.' && i+1 < n && input[i+1] >= '0' && input[i+1] <= '9'):
			start := i
			i = scanNumber(input, i)
			toks = append(toks, Token{Kind: TokNumber, Text: input[start:i], Pos: start})
		case c == '\'':
			start := i
			text, next, err := scanString(input, i)
			if err != nil {
				return nil, err
			}
			toks = append(toks, Token{Kind: TokString, Text: text, Pos: start})
			i = next
		case c == '$':
			start := i
			i++
			for i < n && input[i] >= '0' && input[i] <= '9' {
				i++
			}
			if i == start+1 {
				return nil, syntaxErrf(start, "expected parameter number after '$'")
			}
			toks = append(toks, Token{Kind: TokParam, Text: input[start+1 : i], Pos: start})
		default:
			start := i
			op, width := scanOp(input, i)
			if width == 0 {
				return nil, syntaxErrf(start, "unexpected character %q", string(c))
			}
			toks = append(toks, Token{Kind: TokOp, Text: op, Pos: start})
			i += width
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Pos: n})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}

// scanNumber consumes [digits][.digits][(e|E)[+|-]digits] starting at i
// and returns the index after the literal.
func scanNumber(input string, i int) int {
	n := len(input)
	for i < n && input[i] >= '0' && input[i] <= '9' {
		i++
	}
	if i < n && input[i] == '.' {
		i++
		for i < n && input[i] >= '0' && input[i] <= '9' {
			i++
		}
	}
	if i < n && (input[i] == 'e' || input[i] == 'E') {
		j := i + 1
		if j < n && (input[j] == '+' || input[j] == '-') {
			j++
		}
		if j < n && input[j] >= '0' && input[j] <= '9' {
			i = j
			for i < n && input[i] >= '0' && input[i] <= '9' {
				i++
			}
		}
	}
	return i
}

// scanString consumes a single-quoted literal starting at the opening
// quote; ” inside the literal encodes one quote character.
func scanString(input string, i int) (text string, next int, err error) {
	n := len(input)
	var b strings.Builder
	j := i + 1
	for j < n {
		if input[j] == '\'' {
			if j+1 < n && input[j+1] == '\'' {
				b.WriteByte('\'')
				j += 2
				continue
			}
			return b.String(), j + 1, nil
		}
		b.WriteByte(input[j])
		j++
	}
	return "", 0, syntaxErrf(i, "unterminated string literal")
}

// scanOp matches the longest operator at position i, returning it and its
// width (0 when nothing matches).
func scanOp(input string, i int) (string, int) {
	if i+1 < len(input) {
		two := input[i : i+2]
		switch two {
		case "<=", ">=", "<>", "!=":
			return two, 2
		}
	}
	switch input[i] {
	case '(', ')', ',', ';', '.', '*', '+', '-', '/', '%', '=', '<', '>', '{', '}', '[', ']':
		return input[i : i+1], 1
	}
	return "", 0
}
