package sql

import (
	"math"
	"strings"

	"madlib/internal/engine"
)

// This file is the planner's second lowering target: column-batch
// kernels. Where compile.go lowers an expression to a per-row closure,
// this lowering produces kernels that fill a whole output lane
// ([]float64 / []int64 / []string / []bool) for the *selected* rows of
// one engine.ColBatch in a single call, reading the segment's columnar
// storage directly. Selection vectors thread WHERE semantics through the
// pipeline: a kernel only ever evaluates rows that survived every
// enclosing filter, so error behavior (division by zero, AND/OR
// short-circuiting) matches the row lane exactly.
//
// Not every expression has a batch lowering — Vector-typed operands,
// madlib calls, and $n parameters outside comparison positions fall back
// to the row lane. compileBatch* functions therefore return ok=false
// rather than errors: the row-lane compile has already type-checked the
// expression, so a false here only means "use the row lane", never "the
// query is invalid".

// selVec is a selection vector: the batch-local indices (0..Len-1) of
// the rows a kernel must evaluate, in row order.
type selVec = []int32

// Batch kernel signatures. out has len(sel); out[j] receives the value
// of row sel[j].
type (
	fBatchKernel func(e *batchEval, b engine.ColBatch, sel selVec, out []float64) error
	iBatchKernel func(e *batchEval, b engine.ColBatch, sel selVec, out []int64) error
	sBatchKernel func(e *batchEval, b engine.ColBatch, sel selVec, out []string) error
	bBatchKernel func(e *batchEval, b engine.ColBatch, sel selVec, out []bool) error
)

// bcompiled is one expression lowered to the batch lane: its static kind
// and the kernel matching that kind. Compile-time constants additionally
// carry their folded value so parent kernels can specialize (col > 0.25
// compiles to one loop against a scalar, not a broadcast lane).
type bcompiled struct {
	kind ckind
	f    fBatchKernel
	i    iBatchKernel
	s    sBatchKernel
	b    bBatchKernel

	isConst bool
	cF      float64
	cI      int64

	// paramIdx > 0 marks a bare $n placeholder: a per-execution scalar
	// with no static type. Only comparison kernels can splice it in; any
	// other parent rejects the lowering.
	paramIdx int

	// valid, when non-nil, fills a validity lane for the selected rows:
	// out[j] reports whether row sel[j] carries a real value rather than
	// NULL padding (a LEFT JOIN's unmatched right side). A nil valid
	// means the node can never be NULL. Value kernels of a node with
	// validity only guarantee meaningful output — and fault-freedom — on
	// valid rows; parents must mask or skip the rest. Validity collapses
	// at comparisons (NULL compares false, so the result is a valid
	// bool) and in predicate position (NULL is not true), mirroring the
	// row lane's collapsed three-valued logic.
	valid bBatchKernel
}

// constF returns the constant as float64 (ints widen).
func (c *bcompiled) constF() float64 {
	if c.kind == ckInt {
		return float64(c.cI)
	}
	return c.cF
}

// batchCompiler allocates scratch-lane slots during compilation. Each
// kernel node that needs a temporary lane reserves a slot index at
// compile time; at execution every segment instantiates one batchEval
// holding the actual backing arrays, so kernels are reentrant across
// segments and allocation-free across batches.
type batchCompiler struct {
	schema engine.Schema
	colIdx map[string]int
	prog   *batchProg
	// nullable marks columns that can be NULL at run time (the padded
	// right side of a LEFT JOIN); matchedIdx is the hidden Bool marker
	// column whose lane is those columns' validity bitmap. nil/-1 on
	// plain tables.
	nullable   []bool
	matchedIdx int
	// src mirrors compileCtx.src: the plan source (and thereby the engine
	// handle plus accumulated model dependencies) for madlib.predict.
	src *planSource
}

// batchProg records the scratch-slot footprint of a fully compiled batch
// pipeline; it is the factory for per-segment batchEval instances.
type batchProg struct {
	nFloat, nInt, nStr, nBool, nSel int
}

func newBatchCompiler(schema engine.Schema) *batchCompiler {
	return &batchCompiler{schema: schema, colIdx: colIndexMap(schema), prog: &batchProg{}, matchedIdx: -1}
}

// newBatchCompilerNullable is newBatchCompiler for a source with
// NULL-padded columns (LEFT JOIN output): kernels over the columns
// marked nullable carry validity derived from the matchedIdx marker.
func newBatchCompilerNullable(schema engine.Schema, nullable []bool, matchedIdx int) *batchCompiler {
	bc := newBatchCompiler(schema)
	bc.nullable = nullable
	bc.matchedIdx = matchedIdx
	return bc
}

func (bc *batchCompiler) floatSlot() int { s := bc.prog.nFloat; bc.prog.nFloat++; return s }
func (bc *batchCompiler) intSlot() int   { s := bc.prog.nInt; bc.prog.nInt++; return s }
func (bc *batchCompiler) strSlot() int   { s := bc.prog.nStr; bc.prog.nStr++; return s }
func (bc *batchCompiler) boolSlot() int  { s := bc.prog.nBool; bc.prog.nBool++; return s }
func (bc *batchCompiler) selSlot() int   { s := bc.prog.nSel; bc.prog.nSel++; return s }

// batchEval is the per-segment execution state of a batch pipeline: the
// bound parameter environment plus the scratch lanes reserved at compile
// time. Lanes are allocated on first use at BatchSize capacity and
// reused for every subsequent batch of the segment.
type batchEval struct {
	env   *execEnv
	ident []int32
	fs    [][]float64
	is    [][]int64
	ss    [][]string
	bs    [][]bool
	sels  [][]int32
}

func (p *batchProg) newEval(env *execEnv) *batchEval {
	return &batchEval{
		env:  env,
		fs:   make([][]float64, p.nFloat),
		is:   make([][]int64, p.nInt),
		ss:   make([][]string, p.nStr),
		bs:   make([][]bool, p.nBool),
		sels: make([][]int32, p.nSel),
	}
}

// identSel returns the shared identity selection 0..n-1 (all rows of a
// batch selected). n never exceeds engine.BatchSize.
func (e *batchEval) identSel(n int) selVec {
	if e.ident == nil {
		e.ident = make([]int32, engine.BatchSize)
		for i := range e.ident {
			e.ident[i] = int32(i)
		}
	}
	return e.ident[:n]
}

func growLane[T any](lane []T, n int) []T {
	if cap(lane) < n {
		c := n
		if c < engine.BatchSize {
			c = engine.BatchSize
		}
		lane = make([]T, c)
	}
	return lane[:n]
}

func (e *batchEval) f(slot, n int) []float64 { e.fs[slot] = growLane(e.fs[slot], n); return e.fs[slot] }
func (e *batchEval) i(slot, n int) []int64   { e.is[slot] = growLane(e.is[slot], n); return e.is[slot] }
func (e *batchEval) s(slot, n int) []string  { e.ss[slot] = growLane(e.ss[slot], n); return e.ss[slot] }
func (e *batchEval) b(slot, n int) []bool    { e.bs[slot] = growLane(e.bs[slot], n); return e.bs[slot] }
func (e *batchEval) sel(slot, n int) []int32 {
	e.sels[slot] = growLane(e.sels[slot], n)
	return e.sels[slot]
}

// Constant constructors. Kernels broadcast for generic consumers; parents
// that can specialize read the folded value instead.

func bConstFloat(v float64) *bcompiled {
	return &bcompiled{kind: ckFloat, isConst: true, cF: v,
		f: func(_ *batchEval, _ engine.ColBatch, sel selVec, out []float64) error {
			for j := range out {
				out[j] = v
			}
			return nil
		}}
}

func bConstInt(v int64) *bcompiled {
	return &bcompiled{kind: ckInt, isConst: true, cI: v,
		i: func(_ *batchEval, _ engine.ColBatch, sel selVec, out []int64) error {
			for j := range out {
				out[j] = v
			}
			return nil
		}}
}

func bConstStr(v string) *bcompiled {
	return &bcompiled{kind: ckStr, isConst: true,
		s: func(_ *batchEval, _ engine.ColBatch, sel selVec, out []string) error {
			for j := range out {
				out[j] = v
			}
			return nil
		}}
}

func bConstBool(v bool) *bcompiled {
	return &bcompiled{kind: ckBool, isConst: true,
		b: func(_ *batchEval, _ engine.ColBatch, sel selVec, out []bool) error {
			for j := range out {
				out[j] = v
			}
			return nil
		}}
}

// bErrFloat/bErrInt produce kernels that fail whenever at least one row
// is selected — the batch form of a constant subexpression whose
// evaluation errors per row (e.g. 1/0): an empty selection must stay
// silent, exactly as the row lane never evaluates an unselected row.
func bErrFloat(err error) *bcompiled {
	return &bcompiled{kind: ckFloat,
		f: func(_ *batchEval, _ engine.ColBatch, sel selVec, _ []float64) error {
			if len(sel) == 0 {
				return nil
			}
			return err
		}}
}

func bErrInt(err error) *bcompiled {
	return &bcompiled{kind: ckInt,
		i: func(_ *batchEval, _ engine.ColBatch, sel selVec, _ []int64) error {
			if len(sel) == 0 {
				return nil
			}
			return err
		}}
}

// asF adapts a numeric node to a float kernel, widening int lanes.
func (c *bcompiled) asF(bc *batchCompiler) fBatchKernel {
	if c.kind == ckFloat {
		return c.f
	}
	ik := c.i
	slot := bc.intSlot()
	return func(e *batchEval, b engine.ColBatch, sel selVec, out []float64) error {
		tmp := e.i(slot, len(sel))
		if err := ik(e, b, sel, tmp); err != nil {
			return err
		}
		for j, v := range tmp {
			out[j] = float64(v)
		}
		return nil
	}
}

// validAnd conjoins two validity kernels: the result row is valid iff
// both operands are. nil means always-valid and is absorbed.
func validAnd(l, r bBatchKernel, bc *batchCompiler) bBatchKernel {
	if l == nil {
		return r
	}
	if r == nil {
		return l
	}
	slot := bc.boolSlot()
	return func(e *batchEval, b engine.ColBatch, sel selVec, out []bool) error {
		if err := l(e, b, sel, out); err != nil {
			return err
		}
		tmp := e.b(slot, len(sel))
		if err := r(e, b, sel, tmp); err != nil {
			return err
		}
		for j := range out {
			out[j] = out[j] && tmp[j]
		}
		return nil
	}
}

// validSub evaluates valid over sel and splits it into the
// sub-selection of valid rows plus each one's position within sel; the
// shared sub-selection machinery of every NULL-aware kernel. Invalid
// rows are simply never evaluated — the batch analogue of the row
// lane returning nil before touching an operand — so guarded faults
// (NULL divisors, NULL-only groups) can never fire.
type validSub struct {
	valid           bBatchKernel
	vSlot, sub, pos int
}

func newValidSub(valid bBatchKernel, bc *batchCompiler) validSub {
	return validSub{valid: valid, vSlot: bc.boolSlot(), sub: bc.selSlot(), pos: bc.selSlot()}
}

func (vs validSub) split(e *batchEval, b engine.ColBatch, sel selVec) (sub, pos selVec, err error) {
	vl := e.b(vs.vSlot, len(sel))
	if err := vs.valid(e, b, sel, vl); err != nil {
		return nil, nil, err
	}
	sub = e.sel(vs.sub, len(sel))[:0]
	pos = e.sel(vs.pos, len(sel))[:0]
	for j, idx := range sel {
		if vl[j] {
			sub = append(sub, idx)
			pos = append(pos, int32(j))
		}
	}
	return sub, pos, nil
}

// wrapNullable rewrites a node's value kernel to evaluate only the
// valid sub-selection (scattering results back into place) and records
// the combined validity on the node. Output positions of invalid rows
// keep whatever the lane held — parents mask or skip them.
func wrapNullable(c *bcompiled, valid bBatchKernel, bc *batchCompiler) (*bcompiled, bool) {
	vs := newValidSub(valid, bc)
	switch c.kind {
	case ckFloat:
		inner := c.f
		slot := bc.floatSlot()
		return &bcompiled{kind: ckFloat, valid: valid,
			f: func(e *batchEval, b engine.ColBatch, sel selVec, out []float64) error {
				sub, pos, err := vs.split(e, b, sel)
				if err != nil || len(sub) == 0 {
					return err
				}
				tmp := e.f(slot, len(sub))
				if err := inner(e, b, sub, tmp); err != nil {
					return err
				}
				for j2, p := range pos {
					out[p] = tmp[j2]
				}
				return nil
			}}, true
	case ckInt:
		inner := c.i
		slot := bc.intSlot()
		return &bcompiled{kind: ckInt, valid: valid,
			i: func(e *batchEval, b engine.ColBatch, sel selVec, out []int64) error {
				sub, pos, err := vs.split(e, b, sel)
				if err != nil || len(sub) == 0 {
					return err
				}
				tmp := e.i(slot, len(sub))
				if err := inner(e, b, sub, tmp); err != nil {
					return err
				}
				for j2, p := range pos {
					out[p] = tmp[j2]
				}
				return nil
			}}, true
	}
	return nil, false
}

// collapseBool lowers a possibly-NULL boolean node to a plain boolean
// in predicate position: NULL is not true, exactly as the row lane's
// asBool collapses nil to false.
func collapseBool(c *bcompiled, bc *batchCompiler) *bcompiled {
	if c.valid == nil {
		return c
	}
	inner, valid := c.b, c.valid
	slot := bc.boolSlot()
	return &bcompiled{kind: ckBool,
		b: func(e *batchEval, b engine.ColBatch, sel selVec, out []bool) error {
			if err := inner(e, b, sel, out); err != nil {
				return err
			}
			tmp := e.b(slot, len(sel))
			if err := valid(e, b, sel, tmp); err != nil {
				return err
			}
			for j := range out {
				out[j] = out[j] && tmp[j]
			}
			return nil
		}}
}

// compileBatchExpr lowers e to a batch kernel; ok=false means the
// expression has no batch lowering and the plan must use the row lane.
func compileBatchExpr(e Expr, bc *batchCompiler) (*bcompiled, bool) {
	switch x := e.(type) {
	case *Literal:
		switch v := x.Val.(type) {
		case int64:
			return bConstInt(v), true
		case float64:
			return bConstFloat(v), true
		case string:
			return bConstStr(v), true
		case bool:
			return bConstBool(v), true
		}
		return nil, false
	case *Param:
		return &bcompiled{kind: ckAny, paramIdx: x.Idx}, true
	case *ColumnRef:
		return compileBatchColumnRef(x, bc)
	case *Unary:
		return compileBatchUnary(x, bc)
	case *Binary:
		return compileBatchBinary(x, bc)
	case *FuncCall:
		return compileBatchFuncCall(x, bc)
	}
	return nil, false
}

func compileBatchColumnRef(x *ColumnRef, bc *batchCompiler) (*bcompiled, bool) {
	ci, ok := bc.colIdx[x.Name]
	if !ok {
		return nil, false
	}
	c, ok := gatherColumn(bc.schema[ci].Kind, ci)
	if !ok {
		return nil, false
	}
	if bc.nullable != nil && bc.nullable[ci] {
		// NULL-padded column: the value gather stays as-is (padding holds
		// zero values that no consumer may observe) and the validity lane
		// is the matched marker's Bool lane.
		mi := bc.matchedIdx
		c.valid = func(_ *batchEval, b engine.ColBatch, sel selVec, out []bool) error {
			lane := b.ValidityFromBool(mi)
			if len(sel) == len(lane) {
				copy(out, lane)
				return nil
			}
			for j, idx := range sel {
				out[j] = lane[idx]
			}
			return nil
		}
	}
	return c, true
}

func gatherColumn(kind engine.Kind, ci int) (*bcompiled, bool) {
	// Selection vectors are strictly increasing subsets of 0..Len-1, so a
	// full-length selection is the identity and gathers become memmoves.
	switch kind {
	case engine.Float:
		return &bcompiled{kind: ckFloat,
			f: func(_ *batchEval, b engine.ColBatch, sel selVec, out []float64) error {
				lane := b.Floats(ci)
				if len(sel) == len(lane) {
					copy(out, lane)
					return nil
				}
				for j, idx := range sel {
					out[j] = lane[idx]
				}
				return nil
			}}, true
	case engine.Int:
		return &bcompiled{kind: ckInt,
			i: func(_ *batchEval, b engine.ColBatch, sel selVec, out []int64) error {
				lane := b.Ints(ci)
				if len(sel) == len(lane) {
					copy(out, lane)
					return nil
				}
				for j, idx := range sel {
					out[j] = lane[idx]
				}
				return nil
			}}, true
	case engine.String:
		return &bcompiled{kind: ckStr,
			s: func(_ *batchEval, b engine.ColBatch, sel selVec, out []string) error {
				lane := b.Strings(ci)
				if len(sel) == len(lane) {
					copy(out, lane)
					return nil
				}
				for j, idx := range sel {
					out[j] = lane[idx]
				}
				return nil
			}}, true
	case engine.Bool:
		return &bcompiled{kind: ckBool,
			b: func(_ *batchEval, b engine.ColBatch, sel selVec, out []bool) error {
				lane := b.Bools(ci)
				if len(sel) == len(lane) {
					copy(out, lane)
					return nil
				}
				for j, idx := range sel {
					out[j] = lane[idx]
				}
				return nil
			}}, true
	}
	// Vector columns stay on the row lane.
	return nil, false
}

func compileBatchUnary(x *Unary, bc *batchCompiler) (*bcompiled, bool) {
	c, ok := compileBatchExpr(x.X, bc)
	if !ok {
		return nil, false
	}
	switch x.Op {
	case "-":
		// Negation propagates validity: -NULL is NULL. Running the flip
		// over invalid positions only negates don't-care padding.
		switch c.kind {
		case ckInt:
			if c.isConst {
				return bConstInt(-c.cI), true
			}
			ik := c.i
			return &bcompiled{kind: ckInt, valid: c.valid,
				i: func(e *batchEval, b engine.ColBatch, sel selVec, out []int64) error {
					if err := ik(e, b, sel, out); err != nil {
						return err
					}
					for j := range out {
						out[j] = -out[j]
					}
					return nil
				}}, true
		case ckFloat:
			if c.isConst {
				return bConstFloat(-c.cF), true
			}
			fk := c.f
			return &bcompiled{kind: ckFloat, valid: c.valid,
				f: func(e *batchEval, b engine.ColBatch, sel selVec, out []float64) error {
					if err := fk(e, b, sel, out); err != nil {
						return err
					}
					for j := range out {
						out[j] = -out[j]
					}
					return nil
				}}, true
		}
		return nil, false
	case "NOT":
		if c.kind != ckBool {
			return nil, false
		}
		// NOT propagates validity (NOT NULL is NULL); collapse to false
		// happens where the bool is consumed as a predicate.
		bk := c.b
		return &bcompiled{kind: ckBool, valid: c.valid,
			b: func(e *batchEval, b engine.ColBatch, sel selVec, out []bool) error {
				if err := bk(e, b, sel, out); err != nil {
					return err
				}
				for j := range out {
					out[j] = !out[j]
				}
				return nil
			}}, true
	}
	return nil, false
}

func compileBatchBinary(x *Binary, bc *batchCompiler) (*bcompiled, bool) {
	if x.Op == "AND" || x.Op == "OR" {
		return compileBatchLogic(x, bc)
	}
	l, ok := compileBatchExpr(x.L, bc)
	if !ok {
		return nil, false
	}
	r, ok := compileBatchExpr(x.R, bc)
	if !ok {
		return nil, false
	}
	switch x.Op {
	case "+", "-", "*", "/", "%":
		return compileBatchArith(x.Op, l, r, bc)
	case "=", "<>", "<", "<=", ">", ">=":
		return compileBatchCompare(x.Op, l, r, bc)
	}
	return nil, false
}

// compileBatchLogic lowers AND/OR with row-lane short-circuit semantics:
// the right operand is evaluated only over the sub-selection of rows the
// left operand did not already decide, so a guarded expression
// (x <> 0 AND 1/x > 2) can never fault on a guarded-out row.
func compileBatchLogic(x *Binary, bc *batchCompiler) (*bcompiled, bool) {
	l, ok := compileBatchExpr(x.L, bc)
	if !ok || l.kind != ckBool {
		return nil, false
	}
	r, ok := compileBatchExpr(x.R, bc)
	if !ok || r.kind != ckBool {
		return nil, false
	}
	// AND/OR consume operands in predicate position: a NULL operand is
	// not true (row lane asBool), so possibly-NULL operands collapse
	// before the short-circuit machinery sees them.
	l, r = collapseBool(l, bc), collapseBool(r, bc)
	lb, rb := l.b, r.b
	isAnd := x.Op == "AND"
	subSlot := bc.selSlot()
	posSlot := bc.selSlot()
	rSlot := bc.boolSlot()
	return &bcompiled{kind: ckBool,
		b: func(e *batchEval, b engine.ColBatch, sel selVec, out []bool) error {
			if err := lb(e, b, sel, out); err != nil {
				return err
			}
			sub := e.sel(subSlot, len(sel))[:0]
			pos := e.sel(posSlot, len(sel))[:0]
			for j, idx := range sel {
				if out[j] == isAnd {
					sub = append(sub, idx)
					pos = append(pos, int32(j))
				}
			}
			if len(sub) == 0 {
				return nil
			}
			rout := e.b(rSlot, len(sub))
			if err := rb(e, b, sub, rout); err != nil {
				return err
			}
			for j2, p := range pos {
				out[p] = rout[j2]
			}
			return nil
		}}, true
}

func compileBatchArith(op string, l, r *bcompiled, bc *batchCompiler) (*bcompiled, bool) {
	numeric := func(c *bcompiled) bool { return c.kind == ckFloat || c.kind == ckInt }
	if !numeric(l) || !numeric(r) {
		return nil, false
	}
	// Fold constants now, preserving the row lane's runtime error for
	// constant faults (1/0 errors only when a row is actually selected).
	if l.isConst && r.isConst {
		var lv, rv any
		if l.kind == ckInt {
			lv = l.cI
		} else {
			lv = l.cF
		}
		if r.kind == ckInt {
			rv = r.cI
		} else {
			rv = r.cF
		}
		v, err := evalArith(op, lv, rv)
		if err != nil {
			if l.kind == ckInt && r.kind == ckInt {
				return bErrInt(err), true
			}
			return bErrFloat(err), true
		}
		switch n := v.(type) {
		case int64:
			return bConstInt(n), true
		case float64:
			return bConstFloat(n), true
		}
		return nil, false
	}
	if l.valid != nil || r.valid != nil {
		// NULL-aware arithmetic: NULL propagates, so the result's
		// validity is the AND of the operands' and the op runs only over
		// the valid sub-selection — a NULL divisor therefore never
		// faults, exactly like evalArith returning nil before its zero
		// check.
		var inner *bcompiled
		var ok bool
		if l.kind == ckInt && r.kind == ckInt {
			inner, ok = batchIntArith(op, l.i, r.i, bc)
		} else {
			inner, ok = batchFloatArith(op, l.asF(bc), r.asF(bc), bc)
		}
		if !ok {
			return nil, false
		}
		return wrapNullable(inner, validAnd(l.valid, r.valid, bc), bc)
	}
	if l.kind == ckInt && r.kind == ckInt {
		return batchIntArith(op, l.i, r.i, bc)
	}
	return batchFloatArith(op, l.asF(bc), r.asF(bc), bc)
}

func batchIntArith(op string, lf, rf iBatchKernel, bc *batchCompiler) (*bcompiled, bool) {
	slot := bc.intSlot()
	eval2 := func(e *batchEval, b engine.ColBatch, sel selVec, out []int64) ([]int64, error) {
		if err := lf(e, b, sel, out); err != nil {
			return nil, err
		}
		tmp := e.i(slot, len(sel))
		if err := rf(e, b, sel, tmp); err != nil {
			return nil, err
		}
		return tmp, nil
	}
	var k iBatchKernel
	switch op {
	case "+":
		k = func(e *batchEval, b engine.ColBatch, sel selVec, out []int64) error {
			tmp, err := eval2(e, b, sel, out)
			if err != nil {
				return err
			}
			for j := range out {
				out[j] += tmp[j]
			}
			return nil
		}
	case "-":
		k = func(e *batchEval, b engine.ColBatch, sel selVec, out []int64) error {
			tmp, err := eval2(e, b, sel, out)
			if err != nil {
				return err
			}
			for j := range out {
				out[j] -= tmp[j]
			}
			return nil
		}
	case "*":
		k = func(e *batchEval, b engine.ColBatch, sel selVec, out []int64) error {
			tmp, err := eval2(e, b, sel, out)
			if err != nil {
				return err
			}
			for j := range out {
				out[j] *= tmp[j]
			}
			return nil
		}
	case "/":
		k = func(e *batchEval, b engine.ColBatch, sel selVec, out []int64) error {
			tmp, err := eval2(e, b, sel, out)
			if err != nil {
				return err
			}
			for j := range out {
				if tmp[j] == 0 {
					return execErrf("division by zero")
				}
				out[j] /= tmp[j]
			}
			return nil
		}
	case "%":
		k = func(e *batchEval, b engine.ColBatch, sel selVec, out []int64) error {
			tmp, err := eval2(e, b, sel, out)
			if err != nil {
				return err
			}
			for j := range out {
				if tmp[j] == 0 {
					return execErrf("division by zero")
				}
				out[j] %= tmp[j]
			}
			return nil
		}
	default:
		return nil, false
	}
	return &bcompiled{kind: ckInt, i: k}, true
}

func batchFloatArith(op string, lf, rf fBatchKernel, bc *batchCompiler) (*bcompiled, bool) {
	slot := bc.floatSlot()
	eval2 := func(e *batchEval, b engine.ColBatch, sel selVec, out []float64) ([]float64, error) {
		if err := lf(e, b, sel, out); err != nil {
			return nil, err
		}
		tmp := e.f(slot, len(sel))
		if err := rf(e, b, sel, tmp); err != nil {
			return nil, err
		}
		return tmp, nil
	}
	var k fBatchKernel
	switch op {
	case "+":
		k = func(e *batchEval, b engine.ColBatch, sel selVec, out []float64) error {
			tmp, err := eval2(e, b, sel, out)
			if err != nil {
				return err
			}
			for j := range out {
				out[j] += tmp[j]
			}
			return nil
		}
	case "-":
		k = func(e *batchEval, b engine.ColBatch, sel selVec, out []float64) error {
			tmp, err := eval2(e, b, sel, out)
			if err != nil {
				return err
			}
			for j := range out {
				out[j] -= tmp[j]
			}
			return nil
		}
	case "*":
		k = func(e *batchEval, b engine.ColBatch, sel selVec, out []float64) error {
			tmp, err := eval2(e, b, sel, out)
			if err != nil {
				return err
			}
			for j := range out {
				out[j] *= tmp[j]
			}
			return nil
		}
	case "/":
		k = func(e *batchEval, b engine.ColBatch, sel selVec, out []float64) error {
			tmp, err := eval2(e, b, sel, out)
			if err != nil {
				return err
			}
			for j := range out {
				if tmp[j] == 0 {
					return execErrf("division by zero")
				}
				out[j] /= tmp[j]
			}
			return nil
		}
	case "%":
		k = func(e *batchEval, b engine.ColBatch, sel selVec, out []float64) error {
			tmp, err := eval2(e, b, sel, out)
			if err != nil {
				return err
			}
			for j := range out {
				if tmp[j] == 0 {
					return execErrf("division by zero")
				}
				out[j] = math.Mod(out[j], tmp[j])
			}
			return nil
		}
	default:
		return nil, false
	}
	return &bcompiled{kind: ckFloat, f: k}, true
}

// flipCmp mirrors an operator so `const op x` reuses the x-op-const
// loops (5 < v  ≡  v > 5).
func flipCmp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op // = and <> are symmetric
}

// fcmpConst compares a float lane against a scalar. The forms mirror
// cmpToBool over the row lane's three-way compare, so NaN behaves
// identically in both lanes (a NaN operand compares "equal").
func fcmpConst(op string, vals []float64, c float64, out []bool) {
	switch op {
	case "=":
		for j, a := range vals {
			out[j] = !(a < c) && !(a > c)
		}
	case "<>":
		for j, a := range vals {
			out[j] = a < c || a > c
		}
	case "<":
		for j, a := range vals {
			out[j] = a < c
		}
	case "<=":
		for j, a := range vals {
			out[j] = !(a > c)
		}
	case ">":
		for j, a := range vals {
			out[j] = a > c
		}
	case ">=":
		for j, a := range vals {
			out[j] = !(a < c)
		}
	}
}

func fcmp2(op string, lv, rv []float64, out []bool) {
	switch op {
	case "=":
		for j := range lv {
			out[j] = !(lv[j] < rv[j]) && !(lv[j] > rv[j])
		}
	case "<>":
		for j := range lv {
			out[j] = lv[j] < rv[j] || lv[j] > rv[j]
		}
	case "<":
		for j := range lv {
			out[j] = lv[j] < rv[j]
		}
	case "<=":
		for j := range lv {
			out[j] = !(lv[j] > rv[j])
		}
	case ">":
		for j := range lv {
			out[j] = lv[j] > rv[j]
		}
	case ">=":
		for j := range lv {
			out[j] = !(lv[j] < rv[j])
		}
	}
}

func icmpConst(op string, vals []int64, c int64, out []bool) {
	switch op {
	case "=":
		for j, a := range vals {
			out[j] = a == c
		}
	case "<>":
		for j, a := range vals {
			out[j] = a != c
		}
	case "<":
		for j, a := range vals {
			out[j] = a < c
		}
	case "<=":
		for j, a := range vals {
			out[j] = a <= c
		}
	case ">":
		for j, a := range vals {
			out[j] = a > c
		}
	case ">=":
		for j, a := range vals {
			out[j] = a >= c
		}
	}
}

func icmp2(op string, lv, rv []int64, out []bool) {
	switch op {
	case "=":
		for j := range lv {
			out[j] = lv[j] == rv[j]
		}
	case "<>":
		for j := range lv {
			out[j] = lv[j] != rv[j]
		}
	case "<":
		for j := range lv {
			out[j] = lv[j] < rv[j]
		}
	case "<=":
		for j := range lv {
			out[j] = lv[j] <= rv[j]
		}
	case ">":
		for j := range lv {
			out[j] = lv[j] > rv[j]
		}
	case ">=":
		for j := range lv {
			out[j] = lv[j] >= rv[j]
		}
	}
}

func scmp2(op string, lv, rv []string, out []bool) {
	switch op {
	case "=":
		for j := range lv {
			out[j] = lv[j] == rv[j]
		}
	case "<>":
		for j := range lv {
			out[j] = lv[j] != rv[j]
		}
	case "<":
		for j := range lv {
			out[j] = strings.Compare(lv[j], rv[j]) < 0
		}
	case "<=":
		for j := range lv {
			out[j] = strings.Compare(lv[j], rv[j]) <= 0
		}
	case ">":
		for j := range lv {
			out[j] = strings.Compare(lv[j], rv[j]) > 0
		}
	case ">=":
		for j := range lv {
			out[j] = strings.Compare(lv[j], rv[j]) >= 0
		}
	}
}

func compileBatchCompare(op string, l, r *bcompiled, bc *batchCompiler) (*bcompiled, bool) {
	numeric := func(c *bcompiled) bool { return c.kind == ckFloat || c.kind == ckInt }
	if l.valid != nil || r.valid != nil {
		return compileBatchNullCompare(op, l, r, bc)
	}
	// Typed numeric vs $n parameter: the parameter is a per-execution
	// scalar, fetched and coerced once per batch — the batch form of the
	// row lane's typed-vs-dynamic comparison special case.
	if numeric(l) && r.paramIdx > 0 {
		return batchParamCompare(op, l, r.paramIdx, bc), true
	}
	if numeric(r) && l.paramIdx > 0 {
		return batchParamCompare(flipCmp(op), r, l.paramIdx, bc), true
	}
	switch {
	case numeric(l) && numeric(r):
		if l.kind == ckInt && r.kind == ckInt {
			switch {
			case r.isConst:
				lk, c := l.i, r.cI
				slot := bc.intSlot()
				return &bcompiled{kind: ckBool,
					b: func(e *batchEval, b engine.ColBatch, sel selVec, out []bool) error {
						vals := e.i(slot, len(sel))
						if err := lk(e, b, sel, vals); err != nil {
							return err
						}
						icmpConst(op, vals, c, out)
						return nil
					}}, true
			case l.isConst:
				rk, c := r.i, l.cI
				fop := flipCmp(op)
				slot := bc.intSlot()
				return &bcompiled{kind: ckBool,
					b: func(e *batchEval, b engine.ColBatch, sel selVec, out []bool) error {
						vals := e.i(slot, len(sel))
						if err := rk(e, b, sel, vals); err != nil {
							return err
						}
						icmpConst(fop, vals, c, out)
						return nil
					}}, true
			default:
				lk, rk := l.i, r.i
				ls, rs := bc.intSlot(), bc.intSlot()
				return &bcompiled{kind: ckBool,
					b: func(e *batchEval, b engine.ColBatch, sel selVec, out []bool) error {
						lv, rv := e.i(ls, len(sel)), e.i(rs, len(sel))
						if err := lk(e, b, sel, lv); err != nil {
							return err
						}
						if err := rk(e, b, sel, rv); err != nil {
							return err
						}
						icmp2(op, lv, rv, out)
						return nil
					}}, true
			}
		}
		// Mixed or float comparison: both sides as float lanes.
		switch {
		case r.isConst:
			lk, c := l.asF(bc), r.constF()
			slot := bc.floatSlot()
			return &bcompiled{kind: ckBool,
				b: func(e *batchEval, b engine.ColBatch, sel selVec, out []bool) error {
					vals := e.f(slot, len(sel))
					if err := lk(e, b, sel, vals); err != nil {
						return err
					}
					fcmpConst(op, vals, c, out)
					return nil
				}}, true
		case l.isConst:
			rk, c := r.asF(bc), l.constF()
			fop := flipCmp(op)
			slot := bc.floatSlot()
			return &bcompiled{kind: ckBool,
				b: func(e *batchEval, b engine.ColBatch, sel selVec, out []bool) error {
					vals := e.f(slot, len(sel))
					if err := rk(e, b, sel, vals); err != nil {
						return err
					}
					fcmpConst(fop, vals, c, out)
					return nil
				}}, true
		default:
			lk, rk := l.asF(bc), r.asF(bc)
			ls, rs := bc.floatSlot(), bc.floatSlot()
			return &bcompiled{kind: ckBool,
				b: func(e *batchEval, b engine.ColBatch, sel selVec, out []bool) error {
					lv, rv := e.f(ls, len(sel)), e.f(rs, len(sel))
					if err := lk(e, b, sel, lv); err != nil {
						return err
					}
					if err := rk(e, b, sel, rv); err != nil {
						return err
					}
					fcmp2(op, lv, rv, out)
					return nil
				}}, true
		}
	case l.kind == ckStr && r.kind == ckStr:
		lk, rk := l.s, r.s
		ls, rs := bc.strSlot(), bc.strSlot()
		return &bcompiled{kind: ckBool,
			b: func(e *batchEval, b engine.ColBatch, sel selVec, out []bool) error {
				lv, rv := e.s(ls, len(sel)), e.s(rs, len(sel))
				if err := lk(e, b, sel, lv); err != nil {
					return err
				}
				if err := rk(e, b, sel, rv); err != nil {
					return err
				}
				scmp2(op, lv, rv, out)
				return nil
			}}, true
	}
	// Bool/vector comparisons and anything dynamic: row lane.
	return nil, false
}

// compileBatchNullCompare lowers a comparison with at least one
// possibly-NULL side. A comparison with NULL is false — never NULL — so
// the result collapses to a plain bool lane: default false everywhere,
// the real comparison evaluated only over the rows where both sides are
// valid. The row lane routes any such comparison through boxed values
// (toFloat / compareValues), so the numeric compare domain is float
// even for int operands — mirrored here for bit parity.
func compileBatchNullCompare(op string, l, r *bcompiled, bc *batchCompiler) (*bcompiled, bool) {
	if l.paramIdx > 0 || r.paramIdx > 0 {
		return nil, false // dynamic vs NULL-able: keep the row lane's generic path
	}
	numeric := func(c *bcompiled) bool { return c.kind == ckFloat || c.kind == ckInt }
	valid := validAnd(l.valid, r.valid, bc)
	vs := newValidSub(valid, bc)
	switch {
	case numeric(l) && numeric(r):
		lk, rk := l.asF(bc), r.asF(bc)
		ls, rs := bc.floatSlot(), bc.floatSlot()
		resSlot := bc.boolSlot()
		return &bcompiled{kind: ckBool,
			b: func(e *batchEval, b engine.ColBatch, sel selVec, out []bool) error {
				for j := range out {
					out[j] = false
				}
				sub, pos, err := vs.split(e, b, sel)
				if err != nil || len(sub) == 0 {
					return err
				}
				lv, rv := e.f(ls, len(sub)), e.f(rs, len(sub))
				if err := lk(e, b, sub, lv); err != nil {
					return err
				}
				if err := rk(e, b, sub, rv); err != nil {
					return err
				}
				res := e.b(resSlot, len(sub))
				fcmp2(op, lv, rv, res)
				for j2, p := range pos {
					out[p] = res[j2]
				}
				return nil
			}}, true
	case l.kind == ckStr && r.kind == ckStr:
		lk, rk := l.s, r.s
		ls, rs := bc.strSlot(), bc.strSlot()
		resSlot := bc.boolSlot()
		return &bcompiled{kind: ckBool,
			b: func(e *batchEval, b engine.ColBatch, sel selVec, out []bool) error {
				for j := range out {
					out[j] = false
				}
				sub, pos, err := vs.split(e, b, sel)
				if err != nil || len(sub) == 0 {
					return err
				}
				lv, rv := e.s(ls, len(sub)), e.s(rs, len(sub))
				if err := lk(e, b, sub, lv); err != nil {
					return err
				}
				if err := rk(e, b, sub, rv); err != nil {
					return err
				}
				res := e.b(resSlot, len(sub))
				scmp2(op, lv, rv, res)
				for j2, p := range pos {
					out[p] = res[j2]
				}
				return nil
			}}, true
	}
	// NULL-able bools/vectors: row lane.
	return nil, false
}

// batchParamCompare compares a typed numeric lane against the $idx
// parameter value. The parameter is fetched lazily per batch so an empty
// selection (no surviving rows) raises no error — matching a row lane
// that never evaluates the predicate.
func batchParamCompare(op string, l *bcompiled, idx int, bc *batchCompiler) *bcompiled {
	lk := l.asF(bc)
	lkind := l.kind
	slot := bc.floatSlot()
	return &bcompiled{kind: ckBool,
		b: func(e *batchEval, b engine.ColBatch, sel selVec, out []bool) error {
			if len(sel) == 0 {
				return nil
			}
			v, err := e.env.param(idx)
			if err != nil {
				return err
			}
			c, ok := toFloat(v)
			if !ok {
				return execErrf("cannot compare %s with %s", lkind, valueTypeName(v))
			}
			vals := e.f(slot, len(sel))
			if err := lk(e, b, sel, vals); err != nil {
				return err
			}
			fcmpConst(op, vals, c, out)
			return nil
		}}
}

func compileBatchFuncCall(x *FuncCall, bc *batchCompiler) (*bcompiled, bool) {
	if x.Name == "predict" && !x.Star && (x.Schema == "" || x.Schema == "madlib") {
		return compileBatchPredict(x, bc)
	}
	if x.Schema != "" || x.Star || isAggregateCall(x) || isTableValuedCall(x) {
		return nil, false
	}
	args := make([]*bcompiled, len(x.Args))
	for i, a := range x.Args {
		c, ok := compileBatchExpr(a, bc)
		if !ok || c.paramIdx > 0 || c.valid != nil {
			// Possibly-NULL argument: the row lane raises "argument is
			// not numeric" on a NULL at run time; keep that behavior by
			// not lowering the call.
			return nil, false
		}
		args[i] = c
	}
	numeric := func(c *bcompiled) bool { return c.kind == ckFloat || c.kind == ckInt }
	switch x.Name {
	case "abs":
		if len(args) != 1 {
			return nil, false
		}
		switch args[0].kind {
		case ckInt:
			ik := args[0].i
			return &bcompiled{kind: ckInt,
				i: func(e *batchEval, b engine.ColBatch, sel selVec, out []int64) error {
					if err := ik(e, b, sel, out); err != nil {
						return err
					}
					for j, v := range out {
						if v < 0 {
							out[j] = -v
						}
					}
					return nil
				}}, true
		case ckFloat:
			fk := args[0].f
			return &bcompiled{kind: ckFloat,
				f: func(e *batchEval, b engine.ColBatch, sel selVec, out []float64) error {
					if err := fk(e, b, sel, out); err != nil {
						return err
					}
					for j := range out {
						out[j] = math.Abs(out[j])
					}
					return nil
				}}, true
		}
		return nil, false
	case "sqrt", "exp", "ln", "floor", "ceil":
		if len(args) != 1 || !numeric(args[0]) {
			return nil, false
		}
		var mf func(float64) float64
		switch x.Name {
		case "sqrt":
			mf = math.Sqrt
		case "exp":
			mf = math.Exp
		case "ln":
			mf = math.Log
		case "floor":
			mf = math.Floor
		default:
			mf = math.Ceil
		}
		fk := args[0].asF(bc)
		return &bcompiled{kind: ckFloat,
			f: func(e *batchEval, b engine.ColBatch, sel selVec, out []float64) error {
				if err := fk(e, b, sel, out); err != nil {
					return err
				}
				for j := range out {
					out[j] = mf(out[j])
				}
				return nil
			}}, true
	case "pow", "power":
		if len(args) != 2 || !numeric(args[0]) || !numeric(args[1]) {
			return nil, false
		}
		ak, bk := args[0].asF(bc), args[1].asF(bc)
		slot := bc.floatSlot()
		return &bcompiled{kind: ckFloat,
			f: func(e *batchEval, b engine.ColBatch, sel selVec, out []float64) error {
				if err := ak(e, b, sel, out); err != nil {
					return err
				}
				tmp := e.f(slot, len(sel))
				if err := bk(e, b, sel, tmp); err != nil {
					return err
				}
				for j := range out {
					out[j] = math.Pow(out[j], tmp[j])
				}
				return nil
			}}, true
	case "length", "array_length":
		if len(args) != 1 || args[0].kind != ckStr {
			return nil, false
		}
		sk := args[0].s
		slot := bc.strSlot()
		return &bcompiled{kind: ckInt,
			i: func(e *batchEval, b engine.ColBatch, sel selVec, out []int64) error {
				tmp := e.s(slot, len(sel))
				if err := sk(e, b, sel, tmp); err != nil {
					return err
				}
				for j, s := range tmp {
					out[j] = int64(len(s))
				}
				return nil
			}}, true
	}
	return nil, false
}

// compileBatchPredicate lowers a WHERE clause to a boolean batch kernel;
// ok=false falls back to the row lane. A nil WHERE compiles to (nil, true).
func compileBatchPredicate(where Expr, bc *batchCompiler) (bBatchKernel, bool) {
	if where == nil {
		return nil, true
	}
	c, ok := compileBatchExpr(where, bc)
	if !ok || c.kind != ckBool {
		return nil, false
	}
	return collapseBool(c, bc).b, true
}
