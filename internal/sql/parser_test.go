package sql

import (
	"strings"
	"testing"

	"madlib/internal/engine"
)

func mustParse(t *testing.T, in string) Statement {
	t.Helper()
	st, err := ParseStatement(in)
	if err != nil {
		t.Fatalf("parse %q: %v", in, err)
	}
	return st
}

func TestParseCreateTable(t *testing.T) {
	st := mustParse(t, `CREATE TABLE Points (Y double precision, x double precision[], n bigint, tag text, ok boolean)`)
	ct, ok := st.(*CreateTable)
	if !ok {
		t.Fatalf("got %T", st)
	}
	if ct.Name != "points" {
		t.Fatalf("name folded to %q", ct.Name)
	}
	wantKinds := []engine.Kind{engine.Float, engine.Vector, engine.Int, engine.String, engine.Bool}
	if len(ct.Cols) != len(wantKinds) {
		t.Fatalf("cols = %v", ct.Cols)
	}
	if ct.Cols[0].Name != "y" {
		t.Fatalf("column name folded to %q", ct.Cols[0].Name)
	}
	for i, k := range wantKinds {
		if ct.Cols[i].Kind != k {
			t.Fatalf("col %d kind = %v, want %v", i, ct.Cols[i].Kind, k)
		}
	}
}

func TestParseCreateTableTypeAliases(t *testing.T) {
	st := mustParse(t, `create table t (a float, b vector, c int, d varchar, e bool)`)
	ct := st.(*CreateTable)
	want := []engine.Kind{engine.Float, engine.Vector, engine.Int, engine.String, engine.Bool}
	for i, k := range want {
		if ct.Cols[i].Kind != k {
			t.Fatalf("col %d kind = %v, want %v", i, ct.Cols[i].Kind, k)
		}
	}
	if _, err := ParseStatement(`create table t (a frobnitz)`); err == nil {
		t.Fatal("unknown type should fail")
	}
	if _, err := ParseStatement(`create table t (a text[])`); err == nil {
		t.Fatal("text[] should fail")
	}
}

func TestParseDrop(t *testing.T) {
	st := mustParse(t, `DROP TABLE IF EXISTS t`)
	dt := st.(*DropTable)
	if !dt.IfExists || dt.Name != "t" {
		t.Fatalf("drop = %+v", dt)
	}
}

func TestParseInsert(t *testing.T) {
	st := mustParse(t, `INSERT INTO t (y, x) VALUES (1.5, {1, 2}), (-2, ARRAY[3, 4])`)
	ins := st.(*Insert)
	if ins.Table != "t" || len(ins.Columns) != 2 || len(ins.Rows) != 2 {
		t.Fatalf("insert = %+v", ins)
	}
	if _, ok := ins.Rows[0][1].(*ArrayLit); !ok {
		t.Fatalf("brace array literal parsed as %T", ins.Rows[0][1])
	}
	if _, ok := ins.Rows[1][1].(*ArrayLit); !ok {
		t.Fatalf("ARRAY[...] literal parsed as %T", ins.Rows[1][1])
	}
	if lit, ok := ins.Rows[1][0].(*Literal); !ok || lit.Val != int64(-2) {
		t.Fatalf("negative literal parsed as %T (%+v)", ins.Rows[1][0], ins.Rows[1][0])
	}
}

func TestParseSelectClauses(t *testing.T) {
	st := mustParse(t, `SELECT g, avg(v) AS m, count(*) FROM t WHERE v > 0 AND g <> 'x' GROUP BY g ORDER BY m DESC, 1 LIMIT 10`)
	sel := st.(*Select)
	if len(sel.Items) != 3 || sel.From != "t" || sel.Where == nil {
		t.Fatalf("select = %+v", sel)
	}
	if sel.Items[1].Alias != "m" {
		t.Fatalf("alias = %q", sel.Items[1].Alias)
	}
	if fc, ok := sel.Items[2].Expr.(*FuncCall); !ok || !fc.Star {
		t.Fatalf("count(*) parsed as %#v", sel.Items[2].Expr)
	}
	if len(sel.GroupBy) != 1 || sel.GroupBy[0] != "g" {
		t.Fatalf("group by = %v", sel.GroupBy)
	}
	if len(sel.OrderBy) != 2 || !sel.OrderBy[0].Desc || sel.OrderBy[1].Desc {
		t.Fatalf("order by = %+v", sel.OrderBy)
	}
	if sel.Limit != 10 {
		t.Fatalf("limit = %d", sel.Limit)
	}
}

func TestParseMadlibCall(t *testing.T) {
	st := mustParse(t, `SELECT (madlib.linregr(y, x)).* FROM data`)
	sel := st.(*Select)
	if len(sel.Items) != 1 || !sel.Items[0].Expand {
		t.Fatalf("items = %+v", sel.Items)
	}
	fc, ok := sel.Items[0].Expr.(*FuncCall)
	if !ok || fc.Schema != "madlib" || fc.Name != "linregr" || len(fc.Args) != 2 {
		t.Fatalf("call = %#v", sel.Items[0].Expr)
	}
	// Unparenthesized variant.
	st = mustParse(t, `SELECT madlib.kmeans(coords, 3).* FROM points`)
	sel = st.(*Select)
	if !sel.Items[0].Expand {
		t.Fatal("madlib.fn(...).* should set Expand")
	}
}

func TestParsePrecedence(t *testing.T) {
	st := mustParse(t, `SELECT 1 + 2 * 3 = 7 AND NOT false`)
	sel := st.(*Select)
	b, ok := sel.Items[0].Expr.(*Binary)
	if !ok || b.Op != "AND" {
		t.Fatalf("top = %#v", sel.Items[0].Expr)
	}
	cmp, ok := b.L.(*Binary)
	if !ok || cmp.Op != "=" {
		t.Fatalf("left of AND = %#v", b.L)
	}
	if s := cmp.L.String(); s != "(1 + (2 * 3))" {
		t.Fatalf("arith rendering = %q", s)
	}
}

func TestParseMultiStatement(t *testing.T) {
	stmts, err := Parse(`CREATE TABLE t (v float); INSERT INTO t VALUES (1); SELECT * FROM t;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("got %d statements", len(stmts))
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{
		`SELEC 1`,
		`SELECT FROM t`,
		`CREATE TABLE t`,
		`CREATE TABLE t (a)`,
		`INSERT INTO t VALUES`,
		`SELECT a FROM`,
		`SELECT a FROM t WHERE`,
		`SELECT a b c FROM t`,
		`SELECT * FROM t LIMIT -1`,
		`SELECT t.select FROM t`,
		`SELECT (1`,
	} {
		if _, err := Parse(in); err == nil {
			t.Fatalf("%q should fail to parse", in)
		} else if !strings.Contains(err.Error(), "syntax error") {
			t.Fatalf("%q: error %v lacks position context", in, err)
		}
	}
}

func TestParsePrepareExecute(t *testing.T) {
	st := mustParse(t, `PREPARE Plan1 AS SELECT v FROM t WHERE v > $1 ORDER BY v LIMIT 3`)
	p, ok := st.(*Prepare)
	if !ok || p.Name != "plan1" {
		t.Fatalf("prepare = %#v", st)
	}
	inner, ok := p.Stmt.(*Select)
	if !ok || inner.From != "t" || inner.Limit != 3 {
		t.Fatalf("inner = %#v", p.Stmt)
	}
	if p.Text != "SELECT v FROM t WHERE v > $1 ORDER BY v LIMIT 3" {
		t.Fatalf("text = %q", p.Text)
	}
	if _, ok := inner.Where.(*Binary).R.(*Param); !ok {
		t.Fatalf("where rhs = %#v", inner.Where.(*Binary).R)
	}

	st = mustParse(t, `EXECUTE plan1(2.5, 'x')`)
	ex := st.(*Execute)
	if ex.Name != "plan1" || len(ex.Args) != 2 {
		t.Fatalf("execute = %#v", ex)
	}
	st = mustParse(t, `EXECUTE plan1`)
	if len(st.(*Execute).Args) != 0 {
		t.Fatalf("bare execute = %#v", st)
	}
	st = mustParse(t, `EXECUTE plan1()`)
	if len(st.(*Execute).Args) != 0 {
		t.Fatalf("empty-arg execute = %#v", st)
	}

	if st := mustParse(t, `DEALLOCATE plan1`); st.(*Deallocate).Name != "plan1" {
		t.Fatalf("deallocate = %#v", st)
	}
	if st := mustParse(t, `DEALLOCATE PREPARE ALL`); !st.(*Deallocate).All {
		t.Fatalf("deallocate all = %#v", st)
	}

	for _, bad := range []string{
		`PREPARE p AS DROP TABLE t`,
		`PREPARE p AS CREATE TABLE t (v float)`,
		`PREPARE AS SELECT 1`,
		`EXECUTE`,
		`SELECT $0`,
		`SELECT $99999999`,
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("%q should fail to parse", bad)
		}
	}
}

func TestParseSelectStringRendersFully(t *testing.T) {
	st := mustParse(t, `SELECT g, sum(v) FROM t WHERE v > $1 GROUP BY g ORDER BY g DESC LIMIT 5`)
	got := st.String()
	for _, want := range []string{"ORDER BY g DESC", "LIMIT 5", "$1"} {
		if !strings.Contains(got, want) {
			t.Errorf("String() = %q, missing %q", got, want)
		}
	}
}

func TestParseReservedWordRejected(t *testing.T) {
	if _, err := Parse(`SELECT select FROM t`); err == nil {
		t.Fatal("reserved word as column should fail")
	}
}
