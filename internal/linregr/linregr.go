// Package linregr implements ordinary-least-squares linear regression as a
// user-defined aggregate, following §4.1 of the paper: the transition
// function accumulates XᵀX and Xᵀy per row, merge adds transition states,
// and the final function solves the normal equations via a symmetric
// pseudo-inverse and reports the full inference record (coefficients, R²,
// standard errors, t statistics, p-values, condition number).
//
// Three historical implementations are provided, reproducing the §4.4
// performance study:
//
//   - V01Alpha — "an implementation in C that computes the outer-vector
//     products xᵢxᵢᵀ as a simple nested loop": bypasses the AnyType
//     abstraction layer, accumulates the full k×k square.
//   - V021Beta — the Armadillo/untuned-BLAS generation: goes through the
//     abstraction layer, copies the row vector into freshly allocated
//     memory each call, takes a backend lock per call, and accumulates the
//     square with a cache-hostile column-major walk (the slow row-vector
//     product path the paper profiles).
//   - V03 — the Eigen generation: zero-copy vector mapping through the
//     abstraction layer and a lower-triangular symmetric update
//     (triangularView<Lower>), then a symmetric pseudo-inverse solve.
package linregr

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"madlib/internal/array"
	"madlib/internal/core"
	"madlib/internal/engine"
	"madlib/internal/matrix"
	"madlib/internal/stats"
)

func init() {
	core.RegisterMethod(core.MethodInfo{Name: "linregr", Title: "Linear Regression", Category: core.Supervised})
}

// Version selects one of the three historical implementations.
type Version int

const (
	// V03 is the current implementation (default).
	V03 Version = iota
	// V01Alpha is the original plain-C-style implementation.
	V01Alpha
	// V021Beta is the slow untuned-library implementation.
	V021Beta
)

// String returns the paper's version label.
func (v Version) String() string {
	switch v {
	case V03:
		return "v0.3"
	case V01Alpha:
		return "v0.1alpha"
	case V021Beta:
		return "v0.2.1beta"
	}
	return fmt.Sprintf("version(%d)", int(v))
}

// ErrNoData is returned when the aggregate saw no usable rows.
var ErrNoData = errors.New("linregr: no data rows")

// Result is the composite value linregr returns, matching the psql record
// shown in §4.1.1 of the paper.
type Result struct {
	// Coef are the fitted coefficients b̂ = (XᵀX)⁺ Xᵀy.
	Coef []float64
	// R2 is the coefficient of determination.
	R2 float64
	// StdErr are the per-coefficient standard errors.
	StdErr []float64
	// TStats are the per-coefficient t statistics.
	TStats []float64
	// PValues are two-sided p-values against Student-t(n-k).
	PValues []float64
	// ConditionNo is the condition number of XᵀX.
	ConditionNo float64
	// NumRows is the number of rows accumulated.
	NumRows int64
}

// String renders the result in the style of the paper's psql output.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "coef         | %s\n", fmtVec(r.Coef))
	fmt.Fprintf(&b, "r2           | %.4f\n", r.R2)
	fmt.Fprintf(&b, "std_err      | %s\n", fmtVec(r.StdErr))
	fmt.Fprintf(&b, "t_stats      | %s\n", fmtVec(r.TStats))
	fmt.Fprintf(&b, "p_values     | %s\n", fmtVecE(r.PValues))
	fmt.Fprintf(&b, "condition_no | %.4f", r.ConditionNo)
	return b.String()
}

func fmtVec(xs []float64) string {
	parts := make([]string, len(xs))
	for i, v := range xs {
		parts[i] = fmt.Sprintf("%.4f", v)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func fmtVecE(xs []float64) string {
	parts := make([]string, len(xs))
	for i, v := range xs {
		parts[i] = fmt.Sprintf("%.4e", v)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// state is the transition state, the analogue of LinRegrTransitionState: a
// flat record of counts and running sums that merge can add element-wise.
type state struct {
	k          int
	numRows    int64
	ySum       float64
	ySquareSum float64
	xtY        []float64 // Xᵀy, length k
	xtX        []float64 // XᵀX, k×k row-major (lower triangle only for V03)
	lowerOnly  bool
	err        error
}

func (s *state) init(k int, lowerOnly bool) {
	s.k = k
	s.xtY = make([]float64, k)
	s.xtX = make([]float64, k*k)
	s.lowerOnly = lowerOnly
}

func (s *state) accumulate(y float64, x []float64) {
	s.numRows++
	s.ySum += y
	s.ySquareSum += y * y
	array.Axpy(y, x, s.xtY)
}

type config struct {
	version Version
	// gate and alloc exist so benchmarks can observe the v0.2.1beta
	// overhead channels; Run wires package-level defaults.
	gate  *core.BackendGate
	alloc *core.Allocator
}

// Option configures Run.
type Option func(*config)

// WithVersion selects the implementation generation.
func WithVersion(v Version) Option { return func(c *config) { c.version = v } }

// newAggregate builds the UDA for the configured version. yIdx and xIdx are
// resolved column indexes; bind is the abstraction-layer binding used by
// the V03/V021Beta paths.
func newAggregate(cfg *config, bind *core.Binding, yIdx, xIdx int) engine.Aggregate {
	transition := func(s any, row engine.Row) any {
		st := s.(*state)
		if st.err != nil {
			return st
		}
		var y float64
		var x []float64
		switch cfg.version {
		case V01Alpha:
			// Direct typed access, no bridging: the raw-C path.
			y = row.Float(yIdx)
			x = row.Vector(xIdx)
		case V021Beta:
			// Per-call backend lock plus a defensive copy of the row
			// vector into freshly allocated memory — the overheads the
			// paper profiled out of the first abstraction layer.
			cfg.gate.Enter()
			args := bind.Bridge(row)
			y = args.At(0).Float()
			imm := args.At(1).Vector()
			x = cfg.alloc.AllocVector(len(imm))
			copy(x, imm)
		default: // V03
			// AnyType bridging with zero-copy vector mapping (Listing 1).
			args := bind.Bridge(row)
			y = args.At(0).Float()
			x = args.At(1).Vector()
			if math.IsNaN(y) || !array.AllFinite(x) {
				return st // finiteness screening, as the real v0.3 does
			}
		}
		if st.k == 0 {
			// "The first row determines the number of independent
			// variables" (Listing 1).
			st.init(len(x), cfg.version == V03)
		}
		if len(x) != st.k {
			st.err = fmt.Errorf("linregr: row has %d independent variables, expected %d", len(x), st.k)
			return st
		}
		st.accumulate(y, x)
		switch cfg.version {
		case V01Alpha:
			array.OuterProductFull(st.xtX, x)
		case V021Beta:
			// The Armadillo-era `X_transp_X += y.t()*y` materialized the
			// full k×k product in a freshly allocated temporary (the slow
			// row-vector path of §4.4) before adding it into the state:
			// one k² allocation plus a second k² memory pass per row.
			tmp := cfg.alloc.AllocVector(st.k * st.k)
			array.OuterProductColumnMajor(tmp, x)
			array.AddTo(st.xtX, tmp)
		default:
			array.OuterProductLower(st.xtX, x)
		}
		return st
	}

	merge := func(a, b any) any {
		sa, sb := a.(*state), b.(*state)
		if sa.err != nil {
			return sa
		}
		if sb.err != nil {
			return sb
		}
		if sb.numRows == 0 {
			return sa
		}
		if sa.numRows == 0 {
			return sb
		}
		if sa.k != sb.k {
			sa.err = fmt.Errorf("linregr: segment states disagree on width (%d vs %d)", sa.k, sb.k)
			return sa
		}
		sa.numRows += sb.numRows
		sa.ySum += sb.ySum
		sa.ySquareSum += sb.ySquareSum
		array.AddTo(sa.xtY, sb.xtY)
		array.AddTo(sa.xtX, sb.xtX)
		return sa
	}

	final := func(s any) (any, error) {
		st := s.(*state)
		if st.err != nil {
			return nil, st.err
		}
		if st.numRows == 0 {
			return nil, ErrNoData
		}
		return finalize(st)
	}

	return engine.FuncAggregate{
		InitFn:       func() any { return &state{} },
		TransitionFn: transition,
		MergeFn:      merge,
		FinalFn:      final,
	}
}

// finalize is the final function of Listing 2: invert XᵀX, compute the
// coefficients, and report the inference statistics. Like MADlib v0.3 it
// "takes advantage of the fact that the matrix XᵀX is symmetric positive
// definite": the fast path is a Cholesky-based inverse with a
// power-iteration condition estimate, falling back to the eigenvalue
// pseudo-inverse for rank-deficient designs.
func finalize(st *state) (*Result, error) {
	k := st.k
	n := float64(st.numRows)
	xtx := st.xtX
	if st.lowerOnly {
		array.SymmetrizeLower(xtx, k)
	}
	m := matrix.FromFlat(k, k, xtx)
	var pinv *matrix.Matrix
	var cond float64
	if chol, err := matrix.Cholesky(m); err == nil {
		pinv, err = matrix.InverseFromCholesky(chol)
		if err == nil {
			cond, err = matrix.ConditionSPD(m, chol)
		}
		if err != nil {
			pinv = nil // fall through to the pseudo-inverse path
		}
	}
	if pinv == nil {
		var err error
		pinv, cond, err = matrix.PseudoInverse(m)
		if err != nil {
			return nil, fmt.Errorf("linregr: %w", err)
		}
	}
	coef, err := pinv.MulVec(st.xtY)
	if err != nil {
		return nil, err
	}
	// SSE = yᵀy − b̂ᵀXᵀy (valid because b̂ solves the normal equations);
	// SST = yᵀy − n·ȳ².
	sse := st.ySquareSum - array.Dot(coef, st.xtY)
	if sse < 0 {
		sse = 0 // numerical guard
	}
	sst := st.ySquareSum - st.ySum*st.ySum/n
	r2 := math.NaN()
	if sst > 0 {
		r2 = 1 - sse/sst
	}
	dof := n - float64(k)
	res := &Result{
		Coef:        coef,
		R2:          r2,
		ConditionNo: cond,
		NumRows:     st.numRows,
		StdErr:      make([]float64, k),
		TStats:      make([]float64, k),
		PValues:     make([]float64, k),
	}
	var sigma2 float64
	if dof > 0 {
		sigma2 = sse / dof
	}
	for i := 0; i < k; i++ {
		v := sigma2 * pinv.At(i, i)
		if v < 0 {
			v = 0
		}
		res.StdErr[i] = math.Sqrt(v)
		if res.StdErr[i] > 0 {
			res.TStats[i] = coef[i] / res.StdErr[i]
		} else {
			res.TStats[i] = math.NaN()
		}
		if dof > 0 && !math.IsNaN(res.TStats[i]) {
			res.PValues[i] = stats.StudentTPValue(res.TStats[i], dof)
		} else {
			res.PValues[i] = math.NaN()
		}
	}
	return res, nil
}

// Run executes SELECT (linregr(y, x)).* FROM table. yCol must be a Float
// column, xCol a Vector column whose width is constant across rows. An
// intercept is fitted only if the data includes a constant-1 component,
// matching MADlib's convention.
func Run(db *engine.DB, table *engine.Table, yCol, xCol string, opts ...Option) (*Result, error) {
	cfg := &config{gate: &core.BackendGate{}, alloc: &core.Allocator{}}
	for _, o := range opts {
		o(cfg)
	}
	agg, err := buildAggregate(cfg, table, yCol, xCol)
	if err != nil {
		return nil, err
	}
	v, err := db.Run(table, agg)
	if err != nil {
		return nil, err
	}
	return v.(*Result), nil
}

// RunGroupBy executes SELECT key, (linregr(y, x)).* FROM table GROUP BY key
// — linregr is a true aggregate and composes with grouping, the property
// §4.2.1 contrasts against the driver-based logregr interface.
func RunGroupBy(db *engine.DB, table *engine.Table, yCol, xCol string, key func(engine.Row) string, opts ...Option) (map[string]*Result, error) {
	cfg := &config{gate: &core.BackendGate{}, alloc: &core.Allocator{}}
	for _, o := range opts {
		o(cfg)
	}
	agg, err := buildAggregate(cfg, table, yCol, xCol)
	if err != nil {
		return nil, err
	}
	raw, err := db.RunGroupBy(table, key, agg)
	if err != nil {
		return nil, err
	}
	out := make(map[string]*Result, len(raw))
	for k, v := range raw {
		out[k] = v.(*Result)
	}
	return out, nil
}

// BuildAggregate exposes the configured UDA so benchmark harnesses can run
// it through the engine's instrumented executors (RunInstrumented /
// RunSimulated) for the Figure 4/5 timing experiments.
func BuildAggregate(table *engine.Table, yCol, xCol string, opts ...Option) (engine.Aggregate, error) {
	cfg := &config{gate: &core.BackendGate{}, alloc: &core.Allocator{}}
	for _, o := range opts {
		o(cfg)
	}
	return buildAggregate(cfg, table, yCol, xCol)
}

func buildAggregate(cfg *config, table *engine.Table, yCol, xCol string) (engine.Aggregate, error) {
	schema := table.Schema()
	bind, err := core.BindColumns(schema, yCol, xCol)
	if err != nil {
		return nil, err
	}
	yIdx, xIdx := schema.Index(yCol), schema.Index(xCol)
	if schema[yIdx].Kind != engine.Float {
		return nil, fmt.Errorf("linregr: column %q must be %s", yCol, engine.Float)
	}
	if schema[xIdx].Kind != engine.Vector {
		return nil, fmt.Errorf("linregr: column %q must be %s", xCol, engine.Vector)
	}
	return newAggregate(cfg, bind, yIdx, xIdx), nil
}
