package linregr

import (
	"errors"
	"math"
	"strings"
	"testing"

	"madlib/internal/datagen"
	"madlib/internal/engine"
)

func loadXY(t *testing.T, db *engine.DB, name string, xs [][]float64, ys []float64) *engine.Table {
	t.Helper()
	tbl, err := db.CreateTable(name, engine.Schema{
		{Name: "y", Kind: engine.Float},
		{Name: "x", Kind: engine.Vector},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if err := tbl.Insert(ys[i], xs[i]); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestExactFitSimple(t *testing.T) {
	// y = 2 + 3x exactly; R² must be 1 and coefficients exact.
	db := engine.Open(3)
	var xs [][]float64
	var ys []float64
	for i := 0; i < 10; i++ {
		xs = append(xs, []float64{1, float64(i)})
		ys = append(ys, 2+3*float64(i))
	}
	tbl := loadXY(t, db, "d", xs, ys)
	res, err := Run(db, tbl, "y", "x")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Coef[0]-2) > 1e-9 || math.Abs(res.Coef[1]-3) > 1e-9 {
		t.Fatalf("coef = %v", res.Coef)
	}
	if math.Abs(res.R2-1) > 1e-9 {
		t.Fatalf("R² = %v", res.R2)
	}
	if res.NumRows != 10 {
		t.Fatalf("NumRows = %d", res.NumRows)
	}
}

func TestRecoversTrueCoefficients(t *testing.T) {
	db := engine.Open(4)
	gen := datagen.NewRegression(42, 5000, 5, 0.1)
	tbl, err := gen.LoadRegression(db, "d")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(db, tbl, "y", "x")
	if err != nil {
		t.Fatal(err)
	}
	for i := range gen.Coef {
		if math.Abs(res.Coef[i]-gen.Coef[i]) > 0.05 {
			t.Fatalf("coef[%d] = %v, true %v", i, res.Coef[i], gen.Coef[i])
		}
	}
	if res.R2 < 0.99 {
		t.Fatalf("R² = %v for low-noise data", res.R2)
	}
	// Every true coefficient is large relative to noise → tiny p-values.
	for i, p := range res.PValues {
		if p > 1e-6 {
			t.Fatalf("p-value[%d] = %v for strong signal", i, p)
		}
	}
}

func TestThreeVersionsAgree(t *testing.T) {
	db := engine.Open(4)
	gen := datagen.NewRegression(7, 1000, 8, 0.5)
	tbl, err := gen.LoadRegression(db, "d")
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(db, tbl, "y", "x", WithVersion(V03))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []Version{V01Alpha, V021Beta} {
		res, err := Run(db, tbl, "y", "x", WithVersion(v))
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		for i := range base.Coef {
			if math.Abs(res.Coef[i]-base.Coef[i]) > 1e-8 {
				t.Fatalf("%v coef[%d] = %v, v0.3 %v", v, i, res.Coef[i], base.Coef[i])
			}
		}
		if math.Abs(res.R2-base.R2) > 1e-8 {
			t.Fatalf("%v R² = %v vs %v", v, res.R2, base.R2)
		}
		for i := range base.StdErr {
			if math.Abs(res.StdErr[i]-base.StdErr[i]) > 1e-8 {
				t.Fatalf("%v std_err disagrees", v)
			}
		}
	}
}

func TestSegmentInvariance(t *testing.T) {
	gen := datagen.NewRegression(3, 500, 4, 0.3)
	var ref *Result
	for _, segs := range []int{1, 2, 6, 24} {
		db := engine.Open(segs)
		tbl, err := gen.LoadRegression(db, "d")
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(db, tbl, "y", "x")
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			continue
		}
		for i := range ref.Coef {
			if math.Abs(res.Coef[i]-ref.Coef[i]) > 1e-9 {
				t.Fatalf("segments=%d coef differs: %v vs %v", segs, res.Coef, ref.Coef)
			}
		}
	}
}

func TestNoiseCoefficientInsignificant(t *testing.T) {
	// Include a pure-noise variable; its p-value should usually be large.
	db := engine.Open(2)
	gen := datagen.NewRegression(11, 2000, 3, 1.0)
	// Zero out the effect of the last variable by regenerating y without it.
	for i := range gen.X {
		gen.Y[i] -= gen.Coef[2] * gen.X[i][2]
	}
	tbl, err := gen.LoadRegression(db, "d")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(db, tbl, "y", "x")
	if err != nil {
		t.Fatal(err)
	}
	if res.PValues[2] < 0.001 {
		t.Fatalf("noise variable got p-value %v", res.PValues[2])
	}
}

func TestRankDeficientDesign(t *testing.T) {
	// Third column duplicates the second: XᵀX is singular, so the
	// pseudo-inverse path must produce a usable (minimum-norm) fit.
	db := engine.Open(2)
	var xs [][]float64
	var ys []float64
	for i := 0; i < 50; i++ {
		v := float64(i) / 10
		xs = append(xs, []float64{1, v, v})
		ys = append(ys, 1+2*v)
	}
	tbl := loadXY(t, db, "d", xs, ys)
	res, err := Run(db, tbl, "y", "x")
	if err != nil {
		t.Fatal(err)
	}
	// Predictions must be exact even though individual coefficients are not
	// identifiable: b1+b2 should be 2.
	if math.Abs(res.Coef[1]+res.Coef[2]-2) > 1e-6 {
		t.Fatalf("b1+b2 = %v", res.Coef[1]+res.Coef[2])
	}
	if math.Abs(res.R2-1) > 1e-6 {
		t.Fatalf("R² = %v", res.R2)
	}
}

func TestNaNScreeningV03(t *testing.T) {
	db := engine.Open(2)
	xs := [][]float64{{1, 1}, {1, math.NaN()}, {1, 2}}
	ys := []float64{3, 99, 5}
	tbl := loadXY(t, db, "d", xs, ys)
	res, err := Run(db, tbl, "y", "x", WithVersion(V03))
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows != 2 {
		t.Fatalf("NaN row not screened: NumRows = %d", res.NumRows)
	}
	// y = 1 + 2x fits the two clean points exactly.
	if math.Abs(res.Coef[0]-1) > 1e-9 || math.Abs(res.Coef[1]-2) > 1e-9 {
		t.Fatalf("coef = %v", res.Coef)
	}
}

func TestEmptyTable(t *testing.T) {
	db := engine.Open(2)
	tbl := loadXY(t, db, "d", nil, nil)
	if _, err := Run(db, tbl, "y", "x"); !errors.Is(err, ErrNoData) {
		t.Fatalf("want ErrNoData, got %v", err)
	}
}

func TestMismatchedWidths(t *testing.T) {
	db := engine.Open(1)
	xs := [][]float64{{1, 2}, {1, 2, 3}}
	ys := []float64{1, 2}
	tbl := loadXY(t, db, "d", xs, ys)
	if _, err := Run(db, tbl, "y", "x"); err == nil {
		t.Fatal("expected width mismatch error")
	}
}

func TestColumnValidation(t *testing.T) {
	db := engine.Open(1)
	tbl, _ := db.CreateTable("d", engine.Schema{
		{Name: "y", Kind: engine.Float},
		{Name: "x", Kind: engine.Vector},
		{Name: "s", Kind: engine.String},
	})
	if _, err := Run(db, tbl, "nope", "x"); err == nil {
		t.Fatal("missing y column should fail")
	}
	if _, err := Run(db, tbl, "y", "s"); err == nil {
		t.Fatal("non-vector x column should fail")
	}
	if _, err := Run(db, tbl, "s", "x"); err == nil {
		t.Fatal("non-float y column should fail")
	}
}

func TestGroupedRegression(t *testing.T) {
	// Two groups with different slopes; grouped linregr must fit each.
	db := engine.Open(3)
	tbl, _ := db.CreateTable("d", engine.Schema{
		{Name: "g", Kind: engine.String},
		{Name: "y", Kind: engine.Float},
		{Name: "x", Kind: engine.Vector},
	})
	for i := 0; i < 40; i++ {
		v := float64(i)
		if err := tbl.Insert("a", 1+2*v, []float64{1, v}); err != nil {
			t.Fatal(err)
		}
		if err := tbl.Insert("b", 5-1*v, []float64{1, v}); err != nil {
			t.Fatal(err)
		}
	}
	got, err := RunGroupBy(db, tbl, "y", "x", func(r engine.Row) string { return r.Str(0) })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("groups = %d", len(got))
	}
	if math.Abs(got["a"].Coef[1]-2) > 1e-9 {
		t.Fatalf("group a slope = %v", got["a"].Coef[1])
	}
	if math.Abs(got["b"].Coef[1]+1) > 1e-9 {
		t.Fatalf("group b slope = %v", got["b"].Coef[1])
	}
}

func TestResultString(t *testing.T) {
	db := engine.Open(2)
	gen := datagen.NewRegression(5, 200, 2, 0.2)
	tbl, _ := gen.LoadRegression(db, "d")
	res, err := Run(db, tbl, "y", "x")
	if err != nil {
		t.Fatal(err)
	}
	s := res.String()
	for _, field := range []string{"coef", "r2", "std_err", "t_stats", "p_values", "condition_no"} {
		if !strings.Contains(s, field) {
			t.Fatalf("String() missing %q:\n%s", field, s)
		}
	}
}

func TestConditionNumberScalesWithCollinearity(t *testing.T) {
	db := engine.Open(2)
	// Nearly-collinear design should have a much larger condition number
	// than an orthogonal-ish one.
	var xs1, xs2 [][]float64
	var ys []float64
	for i := 0; i < 200; i++ {
		v := float64(i%20) / 10
		w := float64((i*7)%20) / 10
		xs1 = append(xs1, []float64{1, v, w})           // independent-ish
		xs2 = append(xs2, []float64{1, v, v + 0.001*w}) // nearly collinear
		ys = append(ys, v+w)
	}
	t1 := loadXY(t, db, "d1", xs1, ys)
	t2 := loadXY(t, db, "d2", xs2, ys)
	r1, err := Run(db, t1, "y", "x")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(db, t2, "y", "x")
	if err != nil {
		t.Fatal(err)
	}
	if r2.ConditionNo < 100*r1.ConditionNo {
		t.Fatalf("collinear condition %v not ≫ independent %v", r2.ConditionNo, r1.ConditionNo)
	}
}

func benchVersion(b *testing.B, v Version, k int) {
	db := engine.Open(4)
	gen := datagen.NewRegression(1, 20000, k, 0.5)
	tbl, err := gen.LoadRegression(db, "d")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(db, tbl, "y", "x", WithVersion(v)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkV03K10(b *testing.B)      { benchVersion(b, V03, 10) }
func BenchmarkV01AlphaK10(b *testing.B) { benchVersion(b, V01Alpha, 10) }
func BenchmarkV021BetaK10(b *testing.B) { benchVersion(b, V021Beta, 10) }
func BenchmarkV03K80(b *testing.B)      { benchVersion(b, V03, 80) }
func BenchmarkV01AlphaK80(b *testing.B) { benchVersion(b, V01Alpha, 80) }
func BenchmarkV021BetaK80(b *testing.B) { benchVersion(b, V021Beta, 80) }
