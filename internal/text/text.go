// Package text provides the text-processing primitives of §5.2 and
// Table 3's "Approximate String Matching" column: tokenization, q-gram
// extraction in the style of PostgreSQL's pg_trgm (which the paper's
// entity-resolution work used), an inverted trigram index, and
// similarity-thresholded approximate matching, plus Levenshtein distance
// as the exact reference.
package text

import (
	"sort"
	"strings"
	"unicode"

	"madlib/internal/core"
)

func init() {
	core.RegisterMethod(core.MethodInfo{Name: "approx_match", Title: "Approximate String Matching", Category: core.Supervised})
}

// Tokenize splits text into lowercase word tokens (letters and digits;
// everything else separates).
func Tokenize(s string) []string {
	var out []string
	var cur strings.Builder
	for _, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			cur.WriteRune(unicode.ToLower(r))
		} else if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	if cur.Len() > 0 {
		out = append(out, cur.String())
	}
	return out
}

// QGrams returns the distinct q-grams of s after pg_trgm-style
// normalization: lowercase, non-alphanumerics collapsed to single spaces,
// the whole string padded with q-1 leading spaces and one trailing space.
// "Tim Tebow" with q=3 yields grams like "  t", " ti", "tim", "im ", …
func QGrams(s string, q int) []string {
	if q < 1 {
		return nil
	}
	norm := normalize(s)
	if norm == "" {
		return nil
	}
	padded := strings.Repeat(" ", q-1) + norm + " "
	seen := map[string]bool{}
	var out []string
	runes := []rune(padded)
	for i := 0; i+q <= len(runes); i++ {
		g := string(runes[i : i+q])
		if !seen[g] {
			seen[g] = true
			out = append(out, g)
		}
	}
	sort.Strings(out)
	return out
}

// Trigrams is QGrams with q = 3, the pg_trgm default.
func Trigrams(s string) []string { return QGrams(s, 3) }

func normalize(s string) string {
	var b strings.Builder
	space := true // swallow leading separators
	for _, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			b.WriteRune(unicode.ToLower(r))
			space = false
		} else if !space {
			b.WriteRune(' ')
			space = true
		}
	}
	return strings.TrimRight(b.String(), " ")
}

// Similarity returns the pg_trgm similarity of two strings: the Jaccard
// coefficient of their trigram sets.
func Similarity(a, b string) float64 {
	ga, gb := Trigrams(a), Trigrams(b)
	return jaccard(ga, gb)
}

func jaccard(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	inter := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			inter++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Match is one approximate-match result.
type Match struct {
	// ID is the document id supplied at insertion.
	ID int
	// Text is the stored document.
	Text string
	// Similarity is the trigram Jaccard similarity with the query.
	Similarity float64
}

// Index is an inverted trigram index over a corpus of short strings — the
// analogue of a pg_trgm GIN index, used by the paper's entity-resolution
// UDF ("using the 3-gram index, we created an approximate matching UDF
// that takes in a query string and returns all documents in the corpus
// that contain at least one approximate match").
type Index struct {
	docs     map[int]string
	docGrams map[int][]string
	postings map[string][]int
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	return &Index{docs: map[int]string{}, docGrams: map[int][]string{}, postings: map[string][]int{}}
}

// Add indexes a document under id, replacing any previous text for it.
func (ix *Index) Add(id int, text string) {
	if _, exists := ix.docs[id]; exists {
		ix.remove(id)
	}
	grams := Trigrams(text)
	ix.docs[id] = text
	ix.docGrams[id] = grams
	for _, g := range grams {
		ix.postings[g] = append(ix.postings[g], id)
	}
}

func (ix *Index) remove(id int) {
	for _, g := range ix.docGrams[id] {
		list := ix.postings[g]
		for i, d := range list {
			if d == id {
				ix.postings[g] = append(list[:i], list[i+1:]...)
				break
			}
		}
	}
	delete(ix.docs, id)
	delete(ix.docGrams, id)
}

// Len returns the number of indexed documents.
func (ix *Index) Len() int { return len(ix.docs) }

// Search returns all documents with trigram similarity ≥ threshold,
// best first. Candidates come from the postings lists (documents sharing
// no trigram with the query can never match), then exact similarity is
// computed per candidate.
func (ix *Index) Search(query string, threshold float64) []Match {
	qGrams := Trigrams(query)
	candCounts := map[int]int{}
	for _, g := range qGrams {
		for _, id := range ix.postings[g] {
			candCounts[id]++
		}
	}
	var out []Match
	for id, shared := range candCounts {
		dGrams := ix.docGrams[id]
		union := len(qGrams) + len(dGrams) - shared
		if union <= 0 {
			continue
		}
		sim := float64(shared) / float64(union)
		if sim >= threshold {
			out = append(out, Match{ID: id, Text: ix.docs[id], Similarity: sim})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Similarity != out[j].Similarity {
			return out[i].Similarity > out[j].Similarity
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Levenshtein returns the edit distance between a and b (unit costs), the
// exact reference the trigram matcher approximates.
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			m := prev[j] + 1 // deletion
			if v := cur[j-1] + 1; v < m {
				m = v // insertion
			}
			if v := prev[j-1] + cost; v < m {
				m = v // substitution
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}
