package text

import (
	"testing"
	"testing/quick"

	"madlib/internal/datagen"
)

func TestTokenize(t *testing.T) {
	got := Tokenize("The quick-brown fox, 2 jumps!")
	want := []string{"the", "quick", "brown", "fox", "2", "jumps"}
	if len(got) != len(want) {
		t.Fatalf("Tokenize = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Tokenize[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if Tokenize("") != nil {
		t.Fatal("empty string should yield nil")
	}
}

func TestTrigramsPaperExample(t *testing.T) {
	// §5.2: "Given a string 'Tim Tebow' we can create a 3-gram by using a
	// sliding window of 3 characters."
	grams := Trigrams("Tim Tebow")
	set := map[string]bool{}
	for _, g := range grams {
		set[g] = true
	}
	for _, want := range []string{"tim", "teb", "ebo", "bow", "  t", " ti"} {
		if !set[want] {
			t.Fatalf("missing trigram %q in %v", want, grams)
		}
	}
}

func TestQGramsEdgeCases(t *testing.T) {
	if QGrams("", 3) != nil {
		t.Fatal("empty input should yield nil")
	}
	if QGrams("abc", 0) != nil {
		t.Fatal("q=0 should yield nil")
	}
	// Single char with q=3: padded to "  a " → grams "  a", " a ".
	grams := QGrams("a", 3)
	if len(grams) != 2 {
		t.Fatalf("QGrams(a) = %v", grams)
	}
}

func TestSimilarity(t *testing.T) {
	if s := Similarity("hello", "hello"); s != 1 {
		t.Fatalf("self similarity = %v", s)
	}
	if s := Similarity("hello", "xyzzy"); s != 0 {
		t.Fatalf("disjoint similarity = %v", s)
	}
	s1 := Similarity("Tim Tebow", "Tim Tebo")
	s2 := Similarity("Tim Tebow", "Jim Beam")
	if s1 <= s2 {
		t.Fatalf("near-duplicate %v should beat far string %v", s1, s2)
	}
	if s1 < 0.5 {
		t.Fatalf("near-duplicate similarity only %v", s1)
	}
}

func TestIndexSearch(t *testing.T) {
	ix := NewIndex()
	names, mentions := datagen.Names(1, 10)
	for i, n := range names {
		ix.Add(i, n)
	}
	if ix.Len() != len(names) {
		t.Fatalf("Len = %d", ix.Len())
	}
	// Every one-edit mention should retrieve its canonical name as the
	// best match above a moderate threshold.
	misses := 0
	for mi, mention := range mentions {
		truth := mi / 10 // datagen.Names emits 10 variants per canonical
		res := ix.Search(mention, 0.4)
		if len(res) == 0 || res[0].ID != truth {
			misses++
		}
	}
	if misses > len(mentions)/10 {
		t.Fatalf("%d/%d mentions failed to match", misses, len(mentions))
	}
	// An unrelated query must not match anything.
	if res := ix.Search("zzzzqqqq", 0.2); len(res) != 0 {
		t.Fatalf("unrelated query matched %v", res)
	}
}

func TestIndexReplace(t *testing.T) {
	ix := NewIndex()
	ix.Add(1, "alpha")
	ix.Add(1, "omega")
	res := ix.Search("alpha", 0.5)
	if len(res) != 0 {
		t.Fatalf("stale document still indexed: %v", res)
	}
	res = ix.Search("omega", 0.5)
	if len(res) != 1 || res[0].ID != 1 {
		t.Fatalf("replacement not indexed: %v", res)
	}
}

func TestLevenshteinKnown(t *testing.T) {
	tests := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "ab", 2},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"same", "same", 0},
	}
	for _, tc := range tests {
		if got := Levenshtein(tc.a, tc.b); got != tc.want {
			t.Fatalf("Levenshtein(%q,%q) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestLevenshteinProperties(t *testing.T) {
	// Symmetry and identity-of-indiscernibles on short random strings.
	f := func(a, b string) bool {
		if len(a) > 20 {
			a = a[:20]
		}
		if len(b) > 20 {
			b = b[:20]
		}
		d1, d2 := Levenshtein(a, b), Levenshtein(b, a)
		if d1 != d2 {
			return false
		}
		return (d1 == 0) == (a == b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSimilaritySymmetricProperty(t *testing.T) {
	f := func(a, b string) bool {
		return Similarity(a, b) == Similarity(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkIndexSearch(b *testing.B) {
	ix := NewIndex()
	names, mentions := datagen.Names(2, 50)
	for i, n := range names {
		ix.Add(i, n)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Search(mentions[i%len(mentions)], 0.4)
	}
}
