package engine

import (
	"fmt"
	"testing"
)

// loadBatchTable builds a table with every lane kind and enough rows to
// cross several batch boundaries on every segment.
func loadBatchTable(t *testing.T, segments, rows int) (*DB, *Table) {
	t.Helper()
	db := Open(segments)
	tbl, err := db.CreateTable("t", Schema{
		{Name: "f", Kind: Float},
		{Name: "i", Kind: Int},
		{Name: "s", Kind: String},
		{Name: "b", Kind: Bool},
		{Name: "v", Kind: Vector},
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < rows; r++ {
		err := tbl.Insert(float64(r)/2, int64(r), fmt.Sprintf("s%d", r%7), r%3 == 0, []float64{float64(r)})
		if err != nil {
			t.Fatal(err)
		}
	}
	return db, tbl
}

func TestColBatchLanesMatchRows(t *testing.T) {
	_, tbl := loadBatchTable(t, 3, 2*BatchSize+37)
	for _, seg := range tbl.Segments() {
		covered := 0
		err := forEachBatch(seg, func(b ColBatch) error {
			if b.Len() > BatchSize {
				t.Fatalf("batch of %d rows exceeds BatchSize", b.Len())
			}
			if b.Offset() != covered {
				t.Fatalf("batch offset %d, want %d", b.Offset(), covered)
			}
			fs, is, ss, bs, vs := b.Floats(0), b.Ints(1), b.Strings(2), b.Bools(3), b.Vectors(4)
			for j := 0; j < b.Len(); j++ {
				row := b.Row(j)
				if fs[j] != row.Float(0) || is[j] != row.Int(1) || ss[j] != row.Str(2) ||
					bs[j] != row.Bool(3) || &vs[j][0] != &row.Vector(4)[0] {
					t.Fatalf("lane value mismatch at batch row %d", j)
				}
			}
			covered += b.Len()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if covered != seg.Len() {
			t.Fatalf("batches covered %d of %d rows", covered, seg.Len())
		}
	}
}

// batchSumAgg is the per-row reference aggregate for the parity tests.
var batchSumAgg = FuncAggregate{
	InitFn: func() any { return 0.0 },
	TransitionFn: func(s any, row Row) any {
		return s.(float64) + row.Float(0)
	},
	MergeFn: func(a, b any) any { return a.(float64) + b.(float64) },
	FinalFn: func(s any) (any, error) { return s, nil },
}

func TestRunBatchedMatchesRun(t *testing.T) {
	for _, rows := range []int{0, 1, BatchSize, BatchSize + 1, 3*BatchSize + 511} {
		db, tbl := loadBatchTable(t, 4, rows)
		want, err := db.Run(tbl, batchSumAgg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := db.RunBatched(tbl,
			func(int) any { return new(float64) },
			func(state any, b ColBatch) error {
				acc := state.(*float64)
				for _, v := range b.Floats(0) {
					*acc += v
				}
				return nil
			},
			func(a, b any) any { *a.(*float64) += *b.(*float64); return a },
		)
		if err != nil {
			t.Fatal(err)
		}
		if *got.(*float64) != want.(float64) {
			t.Fatalf("rows=%d: RunBatched=%v Run=%v", rows, *got.(*float64), want)
		}
	}
}

func TestRunGroupByBatchedMatchesRunGroupByKey(t *testing.T) {
	db, tbl := loadBatchTable(t, 4, 2*BatchSize+123)
	want, err := db.RunGroupByKey(tbl, nil,
		func(row Row) GroupKey { return GroupKey{Int: row.Int(1) % 5} },
		batchSumAgg)
	if err != nil {
		t.Fatal(err)
	}
	type segState struct{ m map[GroupKey]any }
	got, err := db.RunGroupByBatched(tbl,
		func(int) any { return &segState{m: make(map[GroupKey]any)} },
		func(state any, b ColBatch) error {
			st := state.(*segState)
			fs, is := b.Floats(0), b.Ints(1)
			for j := range fs {
				k := GroupKey{Int: is[j] % 5}
				acc, _ := st.m[k].(float64)
				st.m[k] = acc + fs[j]
			}
			return nil
		},
		func(state any) map[GroupKey]any { return state.(*segState).m },
		func(a, b any) any { return a.(float64) + b.(float64) },
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d groups, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v.(float64) {
			t.Fatalf("group %v: got %v want %v", k, got[k], v)
		}
	}
}

func TestForEachBatchCoversEveryRowOnce(t *testing.T) {
	db, tbl := loadBatchTable(t, 3, BatchSize+257)
	counts := make([]int64, 3)
	err := db.ForEachBatch(tbl, func(segIdx int, b ColBatch) error {
		counts[segIdx] += int64(b.Len())
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for i, seg := range tbl.Segments() {
		if counts[i] != int64(seg.Len()) {
			t.Fatalf("segment %d: visited %d rows, has %d", i, counts[i], seg.Len())
		}
		total += counts[i]
	}
	if total != tbl.Count() {
		t.Fatalf("visited %d rows, table has %d", total, tbl.Count())
	}
}

func TestRunBatchedPropagatesErrors(t *testing.T) {
	db, tbl := loadBatchTable(t, 2, 100)
	wantErr := fmt.Errorf("kernel boom")
	_, err := db.RunBatched(tbl,
		func(int) any { return nil },
		func(any, ColBatch) error { return wantErr },
		func(a, _ any) any { return a },
	)
	if err != wantErr {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
}
