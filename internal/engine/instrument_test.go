package engine

import (
	"testing"
)

func TestRunInstrumentedMatchesRun(t *testing.T) {
	db := Open(4)
	tbl, _ := db.CreateTable("t", Schema{{Name: "x", Kind: Float}})
	for i := 0; i < 1000; i++ {
		if err := tbl.Insert(float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	want, err := db.Run(tbl, sumAgg(0))
	if err != nil {
		t.Fatal(err)
	}
	got, qs, err := db.RunInstrumented(tbl, sumAgg(0))
	if err != nil {
		t.Fatal(err)
	}
	if got.(float64) != want.(float64) {
		t.Fatalf("instrumented result %v != %v", got, want)
	}
	if qs.Rows != 1000 {
		t.Fatalf("rows = %d", qs.Rows)
	}
	if qs.WallTime <= 0 || qs.MaxSegmentTime <= 0 || qs.TotalSegmentTime < qs.MaxSegmentTime {
		t.Fatalf("implausible stats: %+v", qs)
	}
}

func TestRunSimulatedMatchesRun(t *testing.T) {
	db := Open(6)
	tbl, _ := db.CreateTable("t", Schema{{Name: "x", Kind: Float}})
	for i := 0; i < 600; i++ {
		if err := tbl.Insert(float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	want, _ := db.Run(tbl, sumAgg(0))
	got, qs, err := db.RunSimulated(tbl, sumAgg(0))
	if err != nil {
		t.Fatal(err)
	}
	if got.(float64) != want.(float64) {
		t.Fatalf("simulated result %v != %v", got, want)
	}
	if qs.Rows != 600 {
		t.Fatalf("rows = %d", qs.Rows)
	}
	// Sequential execution: wall time covers the whole scan, so it must be
	// at least the per-segment total minus timer granularity.
	if qs.WallTime < qs.MaxSegmentTime {
		t.Fatalf("wall %v < max segment %v", qs.WallTime, qs.MaxSegmentTime)
	}
}

// The critical-path metric must shrink as segments increase: with the same
// data spread over more segments, the slowest segment holds fewer rows.
func TestSimulatedCriticalPathShrinks(t *testing.T) {
	work := func(segs int) int {
		db := Open(segs)
		tbl, _ := db.CreateTable("t", Schema{{Name: "x", Kind: Float}})
		for i := 0; i < 9000; i++ {
			if err := tbl.Insert(float64(i)); err != nil {
				t.Fatal(err)
			}
		}
		maxRows := 0
		for _, seg := range tbl.Segments() {
			if seg.Len() > maxRows {
				maxRows = seg.Len()
			}
		}
		return maxRows
	}
	if r1, r6 := work(1), work(6); r6*6 != r1 {
		t.Fatalf("rows per segment should divide evenly: 1 seg %d, 6 segs %d", r1, r6)
	}
}
