package engine

// Cancellation contract of the scan drivers: ctx is checked at morsel
// (or segment) boundaries, so a cancelled query stops scanning without
// draining the table and reports ctx.Err(). rows_scanned advances only
// for completed morsels, which is how callers (and the pgwire e2e test)
// verify a kill actually stopped the scan.

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func countRowsAgg(onRow func()) Aggregate {
	return FuncAggregate{
		InitFn: func() any { return int64(0) },
		TransitionFn: func(s any, _ Row) any {
			onRow()
			return s.(int64) + 1
		},
		MergeFn: func(a, b any) any { return a.(int64) + b.(int64) },
		FinalFn: func(s any) (any, error) { return s, nil },
	}
}

func TestRunCtxCancelStopsScanEarly(t *testing.T) {
	db := Open(4)
	// 40 morsels' worth of rows so a cancel in the first morsel leaves
	// most of the table unscanned in every execution mode.
	rows := 40 * MorselRows
	tbl := loadParallelTable(t, db, rows)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var seen atomic.Int64
	before := db.RowsScanned()
	_, err := db.RunCtx(ctx, tbl, countRowsAgg(func() {
		if seen.Add(1) == 100 {
			cancel()
		}
	}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	scanned := db.RowsScanned() - before
	if scanned >= int64(rows) {
		t.Fatalf("scanned %d of %d rows despite cancellation", scanned, rows)
	}
}

func TestRunCtxPreCancelledScansNothing(t *testing.T) {
	db := Open(4)
	tbl := loadParallelTable(t, db, 2*ParallelRowThreshold)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	before := db.RowsScanned()
	if _, err := db.RunCtx(ctx, tbl, countRowsAgg(func() {})); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := db.RowsScanned() - before; got != 0 {
		t.Fatalf("scanned %d rows under a pre-cancelled context", got)
	}
}

func TestForEachBatchCtxCancel(t *testing.T) {
	db := Open(4)
	tbl := loadParallelTable(t, db, 40*MorselRows)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var batches atomic.Int64
	err := db.ForEachBatchCtx(ctx, tbl, func(_ int, b ColBatch) error {
		if batches.Add(1) == 1 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestBackgroundContextKeepsFullScan(t *testing.T) {
	db := Open(4)
	rows := 2 * ParallelRowThreshold
	tbl := loadParallelTable(t, db, rows)
	v, err := db.RunCtx(context.Background(), tbl, countRowsAgg(func() {}))
	if err != nil {
		t.Fatal(err)
	}
	if v.(int64) != int64(rows) {
		t.Fatalf("count = %v, want %d", v, rows)
	}
}
