package engine

// Vectorized (column-batch) execution support. The per-row drivers in
// exec.go invoke a Transition closure once per row; for compiled query
// pipelines that indirection is the dominant cost (ROADMAP: the paper's
// §4.4a overhead argument extended to instruction counts). The batch
// drivers below instead hand the kernel a ColBatch — a typed, zero-copy
// window over ~BatchSize contiguous rows of one segment's columnar
// storage — so the kernel can run tight loops over []float64 / []int64 /
// []string / []bool lanes. Batches never span segments, so kernels keep
// the same no-synchronization contract per segment that Transition has.

import "context"

// BatchSize is the number of rows handed to a batch kernel at a time.
// Sized so one float lane (8 KiB) plus a few scratch lanes stay inside
// L1/L2 cache while amortizing the per-batch dispatch overhead.
const BatchSize = 1024

// ColBatch is a typed view over a contiguous run of rows within one
// segment. Lane accessors return sub-slices of the segment's columnar
// storage — no copying — indexed 0..Len()-1 within the batch. Callers
// must not mutate or retain the lanes beyond the kernel call unless they
// own the table.
type ColBatch struct {
	seg *Segment
	off int
	n   int
}

// Len returns the number of rows in the batch.
func (b ColBatch) Len() int { return b.n }

// Offset returns the batch's starting row index within its segment.
func (b ColBatch) Offset() int { return b.off }

// Floats returns the float64 lane of the given column.
func (b ColBatch) Floats(col int) []float64 { return b.seg.cols[col].floats[b.off : b.off+b.n] }

// Ints returns the int64 lane of the given column.
func (b ColBatch) Ints(col int) []int64 { return b.seg.cols[col].ints[b.off : b.off+b.n] }

// Strings returns the string lane of the given column.
func (b ColBatch) Strings(col int) []string { return b.seg.cols[col].strs[b.off : b.off+b.n] }

// Bools returns the bool lane of the given column.
func (b ColBatch) Bools(col int) []bool { return b.seg.cols[col].bools[b.off : b.off+b.n] }

// Vectors returns the []float64 lane of the given column.
func (b ColBatch) Vectors(col int) [][]float64 { return b.seg.cols[col].vecs[b.off : b.off+b.n] }

// Row returns a row cursor for batch-local index i, for per-row
// fallbacks inside a batch kernel (composite group keys, boxed values).
func (b ColBatch) Row(i int) Row { return Row{seg: b.seg, idx: b.off + i} }

// Validity is a per-batch validity bitmap: Validity[i] reports whether
// row i of the batch carries a real value (true) or NULL padding
// (false). A nil Validity means every row is valid. The engine's
// columnar storage itself has no NULL representation — invalid rows
// hold zero values — so validity is always derived from a Bool marker
// column (the outer join's MatchedCol).
type Validity []bool

// ValidityFromBool exposes a Bool column's lane as the batch's validity
// bitmap: true where the marker is set. This is how NULL-aware batch
// kernels read the LEFT JOIN padding marker without boxing rows.
func (b ColBatch) ValidityFromBool(col int) Validity {
	return Validity(b.seg.cols[col].bools[b.off : b.off+b.n])
}

// forEachBatch slices one segment into BatchSize windows in row order.
func forEachBatch(seg *Segment, fn func(b ColBatch) error) error {
	return forEachBatchRange(seg, 0, seg.n, fn)
}

// forEachBatchRange slices rows [off, off+n) of one segment into
// BatchSize windows in row order. Morsel boundaries are BatchSize-
// aligned (MorselRows is a multiple of BatchSize), so the batches a
// morsel sees are exactly the batches a whole-segment scan would
// produce for the same rows.
func forEachBatchRange(seg *Segment, off, n int, fn func(b ColBatch) error) error {
	end := off + n
	for o := off; o < end; o += BatchSize {
		bn := end - o
		if bn > BatchSize {
			bn = BatchSize
		}
		if err := fn(ColBatch{seg: seg, off: o, n: bn}); err != nil {
			return err
		}
	}
	return nil
}

// RunBatched executes a batched aggregate pipeline over the whole table:
// newState creates one morsel-local state (typically holding reusable
// scratch vectors alongside accumulators), process folds one batch into
// that state, and merge combines two morsel states. Morsels run in
// parallel; batches within a morsel arrive sequentially in row order,
// and the per-morsel states are merged left-to-right in (segment,
// offset) order — the same determinism contract as Run. The caller
// finalizes the merged state itself (there is no Final hook).
func (db *DB) RunBatched(t *Table,
	newState func(morselIdx int) any,
	process func(state any, b ColBatch) error,
	merge func(a, b any) any,
) (any, error) {
	return db.RunBatchedCtx(context.Background(), t, newState, process, merge)
}

// RunBatchedCtx is RunBatched with cancellation at morsel boundaries.
func (db *DB) RunBatchedCtx(ctx context.Context, t *Table,
	newState func(morselIdx int) any,
	process func(state any, b ColBatch) error,
	merge func(a, b any) any,
) (any, error) {
	db.queries.Add(1)
	ms := tableMorsels(t)
	states := make([]any, len(ms))
	err := db.runMorsels(ctx, t, ms, func(i int, m morsel) error {
		state := newState(i)
		if err := forEachBatchRange(m.seg, m.off, m.n, func(b ColBatch) error { return process(state, b) }); err != nil {
			return err
		}
		states[i] = state
		db.rowsScanned.Add(int64(m.n))
		return nil
	})
	if err != nil {
		return nil, err
	}
	merged := states[0]
	for _, s := range states[1:] {
		merged = merge(merged, s)
	}
	return merged, nil
}

// RunGroupByBatched is the hash-aggregate counterpart of RunBatched: the
// kernel maintains a per-morsel map from GroupKey to group state inside
// its morsel state (filled by process), groups extracts that map once
// the morsel is exhausted, and the engine merges the per-morsel maps
// key-by-key in morsel order using merge. As with RunGroupByKey, group
// states are returned unfinalized per key; the caller finalizes.
func (db *DB) RunGroupByBatched(t *Table,
	newState func(morselIdx int) any,
	process func(state any, b ColBatch) error,
	groups func(state any) map[GroupKey]any,
	merge func(a, b any) any,
) (map[GroupKey]any, error) {
	return db.RunGroupByBatchedCtx(context.Background(), t, newState, process, groups, merge)
}

// RunGroupByBatchedCtx is RunGroupByBatched with cancellation at morsel
// boundaries.
func (db *DB) RunGroupByBatchedCtx(ctx context.Context, t *Table,
	newState func(morselIdx int) any,
	process func(state any, b ColBatch) error,
	groups func(state any) map[GroupKey]any,
	merge func(a, b any) any,
) (map[GroupKey]any, error) {
	db.queries.Add(1)
	ms := tableMorsels(t)
	partials := make([]map[GroupKey]any, len(ms))
	err := db.runMorsels(ctx, t, ms, func(i int, m morsel) error {
		state := newState(i)
		if err := forEachBatchRange(m.seg, m.off, m.n, func(b ColBatch) error { return process(state, b) }); err != nil {
			return err
		}
		partials[i] = groups(state)
		db.rowsScanned.Add(int64(m.n))
		return nil
	})
	if err != nil {
		return nil, err
	}
	merged := partials[0]
	for _, local := range partials[1:] {
		for k, s := range local {
			if existing, ok := merged[k]; ok {
				merged[k] = merge(existing, s)
			} else {
				merged[k] = s
			}
		}
	}
	return merged, nil
}

// Morsel is the public view of one scheduling morsel: a contiguous run
// of rows within one segment, the unit of work the scan pool hands a
// worker. Training harnesses (internal/igd) schedule their own epoch
// loops over morsels — permuting, partitioning and chaining them —
// while reading row data through the same ColBatch lanes the query
// drivers use.
type Morsel struct {
	seg *Segment
	off int
	n   int
}

// Len returns the number of rows in the morsel.
func (m Morsel) Len() int { return m.n }

// ForEachBatch slices the morsel into BatchSize-aligned ColBatch
// windows in row order — exactly the batches a whole-segment scan would
// produce for the same rows.
func (m Morsel) ForEachBatch(fn func(b ColBatch) error) error {
	return forEachBatchRange(m.seg, m.off, m.n, fn)
}

// Row returns a row cursor for morsel-local index i, for row-at-a-time
// fallbacks (and the row-lane training oracle).
func (m Morsel) Row(i int) Row { return Row{seg: m.seg, idx: m.off + i} }

// Morsels returns the table's scheduling morsels in (segment, offset)
// order: the same decomposition every scan driver uses, a function of
// the table's shape only — never of the worker count — so any schedule
// built over it is deterministic across GOMAXPROCS settings.
func (t *Table) Morsels() []Morsel {
	defer latchRead(t)()
	ms := tableMorsels(t)
	out := make([]Morsel, len(ms))
	for i, m := range ms {
		out[i] = Morsel{seg: m.seg, off: m.off, n: m.n}
	}
	return out
}

// ForEachBatch runs fn over every batch of every morsel: parallel
// across morsels, sequential in row order within one. It is the batched
// analogue of ForEachSegment, for pipelines that vectorize filtering but
// still emit rows (projection scans). fn receives the morsel index —
// 0..ScanMorsels(t)-1 in (segment, offset) order — so callers can keep
// per-morsel output buffers and concatenate them in order afterwards to
// recover the table's row order.
func (db *DB) ForEachBatch(t *Table, fn func(morselIdx int, b ColBatch) error) error {
	return db.ForEachBatchCtx(context.Background(), t, fn)
}

// ForEachBatchCtx is ForEachBatch with cancellation at morsel
// boundaries.
func (db *DB) ForEachBatchCtx(ctx context.Context, t *Table, fn func(morselIdx int, b ColBatch) error) error {
	db.queries.Add(1)
	return db.runMorsels(ctx, t, tableMorsels(t), func(i int, m morsel) error {
		if err := forEachBatchRange(m.seg, m.off, m.n, func(b ColBatch) error { return fn(i, b) }); err != nil {
			return err
		}
		db.rowsScanned.Add(int64(m.n))
		return nil
	})
}
