// Package engine implements the shared-nothing parallel database substrate
// that MADlib assumes underneath it (paper §1, §3.1): typed tables
// partitioned across N segments, each segment processed by its own worker,
// with two-phase user-defined aggregation (transition on each segment,
// merge across segments, final once), grouped aggregation, filters,
// projections, in-place updates, temp tables and a catalog.
//
// A "segment" corresponds to a Greenplum segment: a query process that owns
// one horizontal partition of every table. Our segments are goroutines, so
// the paper's parallel-speedup experiments (Figures 4 and 5) sweep the
// engine's segment count the way the authors swept their cluster's.
package engine

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"madlib/internal/metrics"
)

// Kind enumerates the column types the engine stores. The set mirrors what
// the paper's methods need: DOUBLE PRECISION, DOUBLE PRECISION[] (vectors),
// BIGINT, TEXT, and BOOLEAN.
type Kind int

const (
	// Float is a DOUBLE PRECISION column.
	Float Kind = iota
	// Vector is a DOUBLE PRECISION[] column.
	Vector
	// Int is a BIGINT column.
	Int
	// String is a TEXT column.
	String
	// Bool is a BOOLEAN column.
	Bool
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case Float:
		return "double precision"
	case Vector:
		return "double precision[]"
	case Int:
		return "bigint"
	case String:
		return "text"
	case Bool:
		return "boolean"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Column describes one column of a table schema.
type Column struct {
	Name string
	Kind Kind
}

// Schema is an ordered list of columns.
type Schema []Column

// Index returns the position of the named column, or -1 when absent.
func (s Schema) Index(name string) int {
	for i, c := range s {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// MustIndex is Index but panics on a missing column; used by method code
// after validation has already happened.
func (s Schema) MustIndex(name string) int {
	i := s.Index(name)
	if i < 0 {
		panic(fmt.Sprintf("engine: no column %q", name))
	}
	return i
}

// Clone returns a copy of the schema.
func (s Schema) Clone() Schema { return append(Schema(nil), s...) }

// Errors reported by the engine.
var (
	ErrNoTable     = errors.New("engine: no such table")
	ErrTableExists = errors.New("engine: table already exists")
	ErrNoColumn    = errors.New("engine: no such column")
	ErrType        = errors.New("engine: value does not match column type")
	ErrArity       = errors.New("engine: wrong number of values for schema")
)

// colData is the columnar storage for one column within one segment. Only
// the slice matching the column's Kind is used.
type colData struct {
	floats []float64
	vecs   [][]float64
	ints   []int64
	strs   []string
	bools  []bool
}

func (c *colData) truncate() {
	c.floats = c.floats[:0]
	c.vecs = c.vecs[:0]
	c.ints = c.ints[:0]
	c.strs = c.strs[:0]
	c.bools = c.bools[:0]
}

// Segment is one horizontal partition of a table. All rows of a segment are
// processed by a single worker during parallel execution, so per-segment
// state needs no synchronization — the same contract Greenplum gives a
// transition function.
type Segment struct {
	cols []colData
	n    int
}

// Len returns the number of rows stored in the segment.
func (s *Segment) Len() int { return s.n }

// Floats exposes the raw float column storage of the segment. This is the
// "bypass the abstraction layer" path used by the v0.1alpha reproduction,
// which modeled hand-written C working directly on the datum array.
func (s *Segment) Floats(col int) []float64 { return s.cols[col].floats }

// Vectors exposes the raw vector column storage of the segment.
func (s *Segment) Vectors(col int) [][]float64 { return s.cols[col].vecs }

// Ints exposes the raw int column storage of the segment.
func (s *Segment) Ints(col int) []int64 { return s.cols[col].ints }

// Strings exposes the raw string column storage of the segment.
func (s *Segment) Strings(col int) []string { return s.cols[col].strs }

// Row is a lightweight cursor pointing at one row of one segment. Accessors
// fetch typed values by column index; vector access is zero-copy.
type Row struct {
	seg *Segment
	idx int
}

// Float returns the float64 value in the given column.
func (r Row) Float(col int) float64 { return r.seg.cols[col].floats[r.idx] }

// Vector returns the []float64 value in the given column without copying.
// Callers must not retain or mutate it beyond the current call unless they
// own the table.
func (r Row) Vector(col int) []float64 { return r.seg.cols[col].vecs[r.idx] }

// Int returns the int64 value in the given column.
func (r Row) Int(col int) int64 { return r.seg.cols[col].ints[r.idx] }

// Str returns the string value in the given column.
func (r Row) Str(col int) string { return r.seg.cols[col].strs[r.idx] }

// Bool returns the bool value in the given column.
func (r Row) Bool(col int) bool { return r.seg.cols[col].bools[r.idx] }

// Index returns the row's position within its segment.
func (r Row) Index() int { return r.idx }

// Table is a named, schema-typed, segment-partitioned relation.
type Table struct {
	name   string
	schema Schema
	segs   []*Segment
	temp   bool

	mu        sync.Mutex
	nextSeg   int   // round-robin insertion pointer
	totalRows int64 // maintained on insert for O(1) Count

	// dataMu latches segment storage: mutators (Insert, InsertHashed,
	// Truncate, UpdateInt/UpdateFloat) hold it exclusively for the whole
	// mutation; scan drivers hold it shared for the whole scan. The REPL
	// never needed this — one session, one statement at a time — but the
	// wire server runs many sessions against one shared engine, where an
	// append can reallocate a column lane out from under a running scan.
	dataMu sync.RWMutex

	// version counts data mutations made through the table/engine API
	// (Insert, InsertHashed, Truncate, UpdateInt, UpdateFloat). Derived
	// results (the SQL front-end's cached join materializations) compare
	// versions to decide whether their input changed. Code that writes
	// segment storage directly bypasses the counter — such writers own
	// the table and must not share it with cached consumers.
	version atomic.Int64
}

// Version returns the table's data-mutation counter. Two equal Version
// reads with the same *Table pointer mean no API-level mutation happened
// in between.
func (t *Table) Version() int64 { return t.version.Load() }

// latchRead takes the shared data latch on every distinct table, in
// name order so two multi-table readers racing writers cannot deadlock
// (a queued writer blocks later readers, so unordered acquisition could
// cycle). The returned func releases all of them.
func latchRead(tables ...*Table) func() {
	held := make([]*Table, 0, len(tables))
	for _, t := range tables {
		dup := false
		for _, h := range held {
			if h == t {
				dup = true
				break
			}
		}
		if !dup {
			held = append(held, t)
		}
	}
	sort.Slice(held, func(i, j int) bool { return held[i].name < held[j].name })
	for _, t := range held {
		t.dataMu.RLock()
	}
	return func() {
		for i := len(held) - 1; i >= 0; i-- {
			held[i].dataMu.RUnlock()
		}
	}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema (callers must not mutate it).
func (t *Table) Schema() Schema { return t.schema }

// Temp reports whether the table was created as a temporary table.
func (t *Table) Temp() bool { return t.temp }

// Segments returns the table's segments.
func (t *Table) Segments() []*Segment { return t.segs }

// Count returns the total number of rows across all segments.
func (t *Table) Count() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.totalRows
}

func newSegment(schema Schema) *Segment {
	return &Segment{cols: make([]colData, len(schema))}
}

// checkValue reports whether v is storable in a column of kind k (the
// same acceptance rules appendValue applies). Insert paths validate the
// whole row first so a mid-row type error cannot leave column lanes
// partially appended and misaligned.
func checkValue(k Kind, v any) error {
	ok := false
	switch k {
	case Float:
		switch v.(type) {
		case float64, int, int64:
			ok = true
		}
	case Vector:
		_, ok = v.([]float64)
	case Int:
		switch v.(type) {
		case int64, int:
			ok = true
		}
	case String:
		_, ok = v.(string)
	case Bool:
		_, ok = v.(bool)
	}
	if !ok {
		return fmt.Errorf("%w: %T into %s", ErrType, v, k)
	}
	return nil
}

// appendValue appends a checkValue-validated value to c. The acceptance
// rules live in checkValue alone; a value that slipped past it panics
// on the type assertion here rather than silently misaligning lanes.
func appendValue(c *colData, k Kind, v any) {
	switch k {
	case Float:
		switch x := v.(type) {
		case float64:
			c.floats = append(c.floats, x)
		case int:
			c.floats = append(c.floats, float64(x))
		case int64:
			c.floats = append(c.floats, float64(x))
		}
	case Vector:
		c.vecs = append(c.vecs, v.([]float64))
	case Int:
		switch x := v.(type) {
		case int64:
			c.ints = append(c.ints, x)
		case int:
			c.ints = append(c.ints, int64(x))
		}
	case String:
		c.strs = append(c.strs, v.(string))
	case Bool:
		c.bools = append(c.bools, v.(bool))
	}
}

// Insert appends one row, distributing rows round-robin across segments
// (the engine's default distribution policy).
func (t *Table) Insert(values ...any) error {
	if len(values) != len(t.schema) {
		return fmt.Errorf("%w: got %d values for %d columns", ErrArity, len(values), len(t.schema))
	}
	for i, v := range values {
		if err := checkValue(t.schema[i].Kind, v); err != nil {
			return fmt.Errorf("column %q: %w", t.schema[i].Name, err)
		}
	}
	t.dataMu.Lock()
	defer t.dataMu.Unlock()
	t.mu.Lock()
	seg := t.segs[t.nextSeg]
	t.nextSeg = (t.nextSeg + 1) % len(t.segs)
	t.totalRows++
	t.mu.Unlock()
	for i, v := range values {
		appendValue(&seg.cols[i], t.schema[i].Kind, v)
	}
	seg.n++
	// Bump only after the row is visible (seg.n incremented): version
	// consumers capture Version before reading, so a bump-before-write
	// could stamp derived results as current while missing the row.
	t.version.Add(1)
	return nil
}

// InsertHashed appends one row, routing it to a segment by the hash of the
// given key, so equal keys co-locate (DISTRIBUTED BY semantics).
func (t *Table) InsertHashed(key uint64, values ...any) error {
	if len(values) != len(t.schema) {
		return fmt.Errorf("%w: got %d values for %d columns", ErrArity, len(values), len(t.schema))
	}
	for i, v := range values {
		if err := checkValue(t.schema[i].Kind, v); err != nil {
			return fmt.Errorf("column %q: %w", t.schema[i].Name, err)
		}
	}
	seg := t.segs[int(key%uint64(len(t.segs)))]
	t.dataMu.Lock()
	defer t.dataMu.Unlock()
	t.mu.Lock()
	t.totalRows++
	t.mu.Unlock()
	for i, v := range values {
		appendValue(&seg.cols[i], t.schema[i].Kind, v)
	}
	seg.n++
	t.version.Add(1) // after the row is visible; see Insert
	return nil
}

// Truncate removes all rows but keeps the schema and segment structure.
func (t *Table) Truncate() {
	t.dataMu.Lock()
	defer t.dataMu.Unlock()
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, s := range t.segs {
		for i := range s.cols {
			s.cols[i].truncate()
		}
		s.n = 0
	}
	t.totalRows = 0
	t.nextSeg = 0
	t.version.Add(1)
}

// DB is the database instance: a catalog of tables and a fixed segment
// count that controls the parallelism of every query.
type DB struct {
	segments int

	mu      sync.RWMutex
	tables  map[string]*Table
	tempSeq int64

	// metrics is this database's observability registry; every counter
	// below is resolved from it once at Open so the hot paths pay one
	// atomic add, never a registry lookup. The SQL layer adds its own
	// counters (plan cache, lanes, join cache) to the same registry and
	// exposes the combined Snapshot as the madlib_stats_counters view.
	metrics *metrics.Registry
	// Statistics counters used by the overhead experiments (§4.4) and
	// the observability layer (PR 6).
	queries     *metrics.Counter
	rowsScanned *metrics.Counter
	// seqScans / parScans count scan dispatch decisions: inline
	// sequential fallback vs morsel worker pool. morsels counts the
	// sub-segment morsels the scheduler produced (one per segment for
	// small segments, seg.n/MorselRows for large ones).
	seqScans *metrics.Counter
	parScans *metrics.Counter
	morsels  *metrics.Counter
	// sortPar / sortSeq count SortStable dispatch decisions: chunked
	// parallel sort + k-way merge vs plain sequential stable sort.
	sortPar *metrics.Counter
	sortSeq *metrics.Counter
	// joinBuilds / joinBuild track hash-join build+probe work.
	joinBuilds *metrics.Counter
	joinBuild  *metrics.Histogram
}

// Open creates a database with the given number of segments (at least 1).
func Open(segments int) *DB {
	if segments < 1 {
		segments = 1
	}
	reg := metrics.NewRegistry()
	return &DB{
		segments:    segments,
		tables:      make(map[string]*Table),
		metrics:     reg,
		queries:     reg.Counter("engine_queries"),
		rowsScanned: reg.Counter("engine_rows_scanned"),
		seqScans:    reg.Counter("engine_scans_sequential"),
		parScans:    reg.Counter("engine_scans_parallel"),
		morsels:     reg.Counter("engine_morsels"),
		sortPar:     reg.Counter("engine_sort_parallel"),
		sortSeq:     reg.Counter("engine_sort_sequential"),
		joinBuilds:  reg.Counter("engine_join_builds"),
		joinBuild:   reg.Histogram("engine_join_build"),
	}
}

// SegmentCount returns the number of segments the database was opened with.
func (db *DB) SegmentCount() int { return db.segments }

// Metrics returns the database's observability registry.
func (db *DB) Metrics() *metrics.Registry { return db.metrics }

// QueriesExecuted returns the number of engine queries run so far.
func (db *DB) QueriesExecuted() int64 { return db.queries.Value() }

// RowsScanned returns the total number of rows fed through transition
// functions so far.
func (db *DB) RowsScanned() int64 { return db.rowsScanned.Value() }

// CreateTable registers a new permanent table.
func (db *DB) CreateTable(name string, schema Schema) (*Table, error) {
	return db.createTable(name, schema, false)
}

// CreateTempTable registers a table flagged as temporary; the driver
// framework (internal/core) uses these for inter-iteration state exactly as
// the paper's Python drivers use CREATE TEMP TABLE (§3.1.2).
func (db *DB) CreateTempTable(prefix string, schema Schema) (*Table, error) {
	return db.createTable(db.nextTempName(prefix), schema, true)
}

// nextTempName reserves the next unique temporary-table name for prefix.
func (db *DB) nextTempName(prefix string) string {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.tempSeq++
	return fmt.Sprintf("%s_tmp_%d", prefix, db.tempSeq)
}

func (db *DB) createTable(name string, schema Schema, temp bool) (*Table, error) {
	if len(schema) == 0 {
		return nil, errors.New("engine: empty schema")
	}
	seen := map[string]bool{}
	for _, c := range schema {
		if c.Name == "" {
			return nil, errors.New("engine: empty column name")
		}
		if seen[c.Name] {
			return nil, fmt.Errorf("engine: duplicate column %q", c.Name)
		}
		seen[c.Name] = true
	}
	t := &Table{name: name, schema: schema.Clone(), temp: temp}
	t.segs = make([]*Segment, db.segments)
	for i := range t.segs {
		t.segs[i] = newSegment(schema)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, exists := db.tables[name]; exists {
		return nil, fmt.Errorf("%w: %q", ErrTableExists, name)
	}
	db.tables[name] = t
	return t, nil
}

// NewDetachedTable builds a table that is NOT registered in any catalog:
// the SQL layer materializes system views (madlib_stats_*) into detached
// tables per execution, so observability snapshots flow through the
// ordinary scan machinery without polluting the catalog or temp-table
// namespace. The caller owns the table; segments is clamped to at least 1.
func NewDetachedTable(name string, schema Schema, segments int) (*Table, error) {
	if len(schema) == 0 {
		return nil, errors.New("engine: empty schema")
	}
	if segments < 1 {
		segments = 1
	}
	t := &Table{name: name, schema: schema.Clone(), temp: true}
	t.segs = make([]*Segment, segments)
	for i := range t.segs {
		t.segs[i] = newSegment(schema)
	}
	return t, nil
}

// Table looks up a table by name.
func (db *DB) Table(name string) (*Table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTable, name)
	}
	return t, nil
}

// DropTable removes a table from the catalog.
func (db *DB) DropTable(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[name]; !ok {
		return fmt.Errorf("%w: %q", ErrNoTable, name)
	}
	delete(db.tables, name)
	return nil
}

// DropTempTables drops every temporary table, as a session end would.
func (db *DB) DropTempTables() {
	db.mu.Lock()
	defer db.mu.Unlock()
	for name, t := range db.tables {
		if t.temp {
			delete(db.tables, name)
		}
	}
}

// TableNames returns the sorted names of all catalog tables; the profile
// module's templated queries start here (§3.1.3).
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// GenerateSeries creates (or replaces) a table with a single Int column "i"
// holding from..to inclusive, reproducing the counted-iteration virtual
// table pattern of §3.1.2 (PostgreSQL's generate_series).
func (db *DB) GenerateSeries(name string, from, to int64) (*Table, error) {
	db.mu.Lock()
	delete(db.tables, name)
	db.mu.Unlock()
	t, err := db.CreateTable(name, Schema{{Name: "i", Kind: Int}})
	if err != nil {
		return nil, err
	}
	for i := from; i <= to; i++ {
		if err := t.Insert(i); err != nil {
			return nil, err
		}
	}
	return t, nil
}
