package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// sumAgg is a simple SUM(col) aggregate used across tests.
func sumAgg(col int) Aggregate {
	return FuncAggregate{
		InitFn:       func() any { return 0.0 },
		TransitionFn: func(s any, r Row) any { return s.(float64) + r.Float(col) },
		MergeFn:      func(a, b any) any { return a.(float64) + b.(float64) },
		FinalFn:      func(s any) (any, error) { return s, nil },
	}
}

func fill(t *testing.T, tbl *Table, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := tbl.Insert(float64(i)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCreateInsertCount(t *testing.T) {
	db := Open(4)
	tbl, err := db.CreateTable("t", Schema{{Name: "x", Kind: Float}})
	if err != nil {
		t.Fatal(err)
	}
	fill(t, tbl, 10)
	if got := tbl.Count(); got != 10 {
		t.Fatalf("Count = %d", got)
	}
	// Round-robin should balance rows across the 4 segments.
	for i, seg := range tbl.Segments() {
		if seg.Len() < 2 || seg.Len() > 3 {
			t.Fatalf("segment %d has %d rows, want 2-3", i, seg.Len())
		}
	}
}

func TestCreateTableValidation(t *testing.T) {
	db := Open(2)
	if _, err := db.CreateTable("t", nil); err == nil {
		t.Fatal("empty schema should fail")
	}
	if _, err := db.CreateTable("t", Schema{{Name: "", Kind: Float}}); err == nil {
		t.Fatal("empty column name should fail")
	}
	if _, err := db.CreateTable("t", Schema{{Name: "a", Kind: Float}, {Name: "a", Kind: Int}}); err == nil {
		t.Fatal("duplicate column should fail")
	}
	if _, err := db.CreateTable("t", Schema{{Name: "a", Kind: Float}}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("t", Schema{{Name: "a", Kind: Float}}); !errors.Is(err, ErrTableExists) {
		t.Fatalf("want ErrTableExists, got %v", err)
	}
}

func TestInsertTypeChecking(t *testing.T) {
	db := Open(2)
	tbl, _ := db.CreateTable("t", Schema{
		{Name: "f", Kind: Float}, {Name: "v", Kind: Vector},
		{Name: "i", Kind: Int}, {Name: "s", Kind: String}, {Name: "b", Kind: Bool},
	})
	if err := tbl.Insert(1.5, []float64{1, 2}, int64(3), "x", true); err != nil {
		t.Fatal(err)
	}
	// int promotes into Float and Int columns.
	if err := tbl.Insert(2, []float64{}, 4, "y", false); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert("bad", []float64{}, 1, "z", true); !errors.Is(err, ErrType) {
		t.Fatalf("want ErrType, got %v", err)
	}
	if err := tbl.Insert(1.0); !errors.Is(err, ErrArity) {
		t.Fatalf("want ErrArity, got %v", err)
	}
}

func TestRunSum(t *testing.T) {
	db := Open(3)
	tbl, _ := db.CreateTable("t", Schema{{Name: "x", Kind: Float}})
	fill(t, tbl, 100)
	got, err := db.Run(tbl, sumAgg(0))
	if err != nil {
		t.Fatal(err)
	}
	if got.(float64) != 4950 {
		t.Fatalf("sum = %v", got)
	}
}

func TestRunEmptyTable(t *testing.T) {
	db := Open(4)
	tbl, _ := db.CreateTable("t", Schema{{Name: "x", Kind: Float}})
	got, err := db.Run(tbl, sumAgg(0))
	if err != nil {
		t.Fatal(err)
	}
	if got.(float64) != 0 {
		t.Fatalf("sum of empty = %v", got)
	}
}

// The core correctness property of the whole engine: a well-formed UDA
// returns the same answer regardless of segment count or row order.
// This is the data-parallelism contract from §3.1.1.
func TestSegmentInvarianceProperty(t *testing.T) {
	f := func(seed int64, nRows uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		vals := make([]float64, int(nRows))
		for i := range vals {
			vals[i] = rng.NormFloat64()
		}
		var ref float64
		haveRef := false
		for _, segs := range []int{1, 2, 3, 7, 16} {
			db := Open(segs)
			tbl, _ := db.CreateTable("t", Schema{{Name: "x", Kind: Float}})
			perm := rng.Perm(len(vals))
			for _, p := range perm {
				if err := tbl.Insert(vals[p]); err != nil {
					return false
				}
			}
			got, err := db.Run(tbl, sumAgg(0))
			if err != nil {
				return false
			}
			// Compare with tolerance: float addition order varies.
			if !haveRef {
				ref, haveRef = got.(float64), true
			} else if diff := got.(float64) - ref; diff > 1e-9 || diff < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFiltered(t *testing.T) {
	db := Open(4)
	tbl, _ := db.CreateTable("t", Schema{{Name: "x", Kind: Float}})
	fill(t, tbl, 10)
	got, err := db.RunFiltered(tbl, func(r Row) bool { return r.Float(0) >= 5 }, sumAgg(0))
	if err != nil {
		t.Fatal(err)
	}
	if got.(float64) != 5+6+7+8+9 {
		t.Fatalf("filtered sum = %v", got)
	}
}

func TestRunGroupBy(t *testing.T) {
	db := Open(4)
	tbl, _ := db.CreateTable("t", Schema{{Name: "g", Kind: String}, {Name: "x", Kind: Float}})
	for i := 0; i < 20; i++ {
		g := "even"
		if i%2 == 1 {
			g = "odd"
		}
		if err := tbl.Insert(g, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := db.RunGroupBy(tbl, func(r Row) string { return r.Str(0) }, sumAgg(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("groups = %d", len(got))
	}
	if got["even"].(float64) != 90 || got["odd"].(float64) != 100 {
		t.Fatalf("group sums = %v", got)
	}
}

func TestGroupByMatchesManualPartition(t *testing.T) {
	f := func(seed int64, nRows uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		db := Open(1 + rng.Intn(8))
		tbl, _ := db.CreateTable("t", Schema{{Name: "g", Kind: Int}, {Name: "x", Kind: Float}})
		want := map[string]float64{}
		for i := 0; i < int(nRows); i++ {
			g := int64(rng.Intn(4))
			v := rng.Float64()
			if err := tbl.Insert(g, v); err != nil {
				return false
			}
			want[fmt.Sprint(g)] += v
		}
		got, err := db.RunGroupBy(tbl, func(r Row) string { return fmt.Sprint(r.Int(0)) }, sumAgg(1))
		if err != nil {
			return false
		}
		if len(got) != len(want) {
			return false
		}
		for k, w := range want {
			g, ok := got[k]
			if !ok {
				return false
			}
			if d := g.(float64) - w; d > 1e-9 || d < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSelectInto(t *testing.T) {
	db := Open(3)
	tbl, _ := db.CreateTable("t", Schema{{Name: "x", Kind: Float}, {Name: "tag", Kind: String}})
	for i := 0; i < 10; i++ {
		if err := tbl.Insert(float64(i), fmt.Sprint(i%2)); err != nil {
			t.Fatal(err)
		}
	}
	out, err := db.SelectInto("evens", tbl, func(r Row) bool { return r.Str(1) == "0" }, []string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	if out.Count() != 5 {
		t.Fatalf("selected %d rows", out.Count())
	}
	if len(out.Schema()) != 1 || out.Schema()[0].Name != "x" {
		t.Fatalf("projected schema wrong: %v", out.Schema())
	}
	sum, err := db.Run(out, sumAgg(0))
	if err != nil {
		t.Fatal(err)
	}
	if sum.(float64) != 0+2+4+6+8 {
		t.Fatalf("sum = %v", sum)
	}
	if _, err := db.SelectInto("bad", tbl, nil, []string{"nope"}); !errors.Is(err, ErrNoColumn) {
		t.Fatalf("want ErrNoColumn, got %v", err)
	}
}

func TestUpdateInt(t *testing.T) {
	db := Open(2)
	tbl, _ := db.CreateTable("points", Schema{{Name: "x", Kind: Float}, {Name: "cid", Kind: Int}})
	for i := 0; i < 6; i++ {
		if err := tbl.Insert(float64(i), int64(-1)); err != nil {
			t.Fatal(err)
		}
	}
	err := db.UpdateInt(tbl, "cid", func(r Row) int64 {
		if r.Float(0) < 3 {
			return 0
		}
		return 1
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := db.CountWhere(tbl, func(r Row) bool { return r.Int(1) == 1 })
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("cluster-1 count = %d", n)
	}
	if err := db.UpdateInt(tbl, "x", func(Row) int64 { return 0 }); !errors.Is(err, ErrType) {
		t.Fatalf("updating float col as int should fail, got %v", err)
	}
	if err := db.UpdateInt(tbl, "zz", func(Row) int64 { return 0 }); !errors.Is(err, ErrNoColumn) {
		t.Fatalf("want ErrNoColumn, got %v", err)
	}
}

func TestUpdateFloat(t *testing.T) {
	db := Open(2)
	tbl, _ := db.CreateTable("t", Schema{{Name: "x", Kind: Float}})
	fill(t, tbl, 4)
	if err := db.UpdateFloat(tbl, "x", func(r Row) float64 { return r.Float(0) * 2 }); err != nil {
		t.Fatal(err)
	}
	sum, _ := db.Run(tbl, sumAgg(0))
	if sum.(float64) != 12 {
		t.Fatalf("sum after update = %v", sum)
	}
}

func TestGenerateSeries(t *testing.T) {
	db := Open(4)
	tbl, err := db.GenerateSeries("s", 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Count() != 10 {
		t.Fatalf("series count = %d", tbl.Count())
	}
	n, _ := db.CountWhere(tbl, func(r Row) bool { return r.Int(0) >= 4 })
	if n != 7 {
		t.Fatalf("count >= 4: %d", n)
	}
	// Replacing an existing series is allowed.
	if _, err := db.GenerateSeries("s", 1, 3); err != nil {
		t.Fatal(err)
	}
}

func TestTempTablesAndCatalog(t *testing.T) {
	db := Open(2)
	if _, err := db.CreateTable("perm", Schema{{Name: "x", Kind: Float}}); err != nil {
		t.Fatal(err)
	}
	tmp, err := db.CreateTempTable("iter", Schema{{Name: "state", Kind: Vector}})
	if err != nil {
		t.Fatal(err)
	}
	if !tmp.Temp() {
		t.Fatal("temp flag lost")
	}
	names := db.TableNames()
	if len(names) != 2 {
		t.Fatalf("catalog = %v", names)
	}
	db.DropTempTables()
	if n := db.TableNames(); len(n) != 1 || n[0] != "perm" {
		t.Fatalf("after DropTempTables: %v", n)
	}
	if _, err := db.Table("missing"); !errors.Is(err, ErrNoTable) {
		t.Fatalf("want ErrNoTable, got %v", err)
	}
	if err := db.DropTable("perm"); err != nil {
		t.Fatal(err)
	}
	if err := db.DropTable("perm"); !errors.Is(err, ErrNoTable) {
		t.Fatalf("double drop: %v", err)
	}
}

func TestInsertHashedColocation(t *testing.T) {
	db := Open(4)
	tbl, _ := db.CreateTable("t", Schema{{Name: "k", Kind: Int}, {Name: "x", Kind: Float}})
	for i := 0; i < 40; i++ {
		key := uint64(i % 4)
		if err := tbl.InsertHashed(key, int64(i%4), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// All rows with the same key must land in the same segment.
	for _, seg := range tbl.Segments() {
		seen := map[int64]bool{}
		for r := 0; r < seg.Len(); r++ {
			seen[seg.Ints(0)[r]] = true
		}
		if len(seen) > 1 {
			t.Fatalf("segment mixes keys: %v", seen)
		}
	}
}

func TestTruncate(t *testing.T) {
	db := Open(2)
	tbl, _ := db.CreateTable("t", Schema{{Name: "x", Kind: Float}})
	fill(t, tbl, 5)
	tbl.Truncate()
	if tbl.Count() != 0 {
		t.Fatalf("count after truncate = %d", tbl.Count())
	}
	fill(t, tbl, 3)
	if tbl.Count() != 3 {
		t.Fatalf("count after refill = %d", tbl.Count())
	}
}

func TestForEachSegmentOrdering(t *testing.T) {
	db := Open(3)
	tbl, _ := db.CreateTable("t", Schema{{Name: "x", Kind: Float}})
	fill(t, tbl, 30)
	// Within a segment rows must appear in insertion order (monotone x for
	// round-robin inserts). State is per-segment (one slot per goroutine),
	// matching the callback's no-locking contract.
	last := make([]float64, 3)
	seen := make([]bool, 3)
	err := db.ForEachSegment(tbl, func(seg int, r Row) error {
		if seen[seg] && r.Float(0) <= last[seg] {
			return fmt.Errorf("segment %d out of order: %v after %v", seg, r.Float(0), last[seg])
		}
		last[seg], seen[seg] = r.Float(0), true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRowsMaterialization(t *testing.T) {
	db := Open(2)
	tbl, _ := db.CreateTable("t", Schema{{Name: "v", Kind: Vector}, {Name: "s", Kind: String}})
	if err := tbl.Insert([]float64{1, 2}, "a"); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert([]float64{3}, "b"); err != nil {
		t.Fatal(err)
	}
	rows := db.Rows(tbl)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		if _, ok := row[0].([]float64); !ok {
			t.Fatalf("vector column wrong type: %T", row[0])
		}
	}
}

func TestStatisticsCounters(t *testing.T) {
	db := Open(2)
	tbl, _ := db.CreateTable("t", Schema{{Name: "x", Kind: Float}})
	fill(t, tbl, 10)
	q0, r0 := db.QueriesExecuted(), db.RowsScanned()
	if _, err := db.Run(tbl, sumAgg(0)); err != nil {
		t.Fatal(err)
	}
	if db.QueriesExecuted() != q0+1 {
		t.Fatal("query counter not incremented")
	}
	if db.RowsScanned() != r0+10 {
		t.Fatalf("rows scanned = %d, want %d", db.RowsScanned(), r0+10)
	}
}

func TestOpenClampsSegments(t *testing.T) {
	if db := Open(0); db.SegmentCount() != 1 {
		t.Fatal("segments should clamp to 1")
	}
}

func BenchmarkRunSum(b *testing.B) {
	db := Open(8)
	tbl, _ := db.CreateTable("t", Schema{{Name: "x", Kind: Float}})
	for i := 0; i < 100000; i++ {
		if err := tbl.Insert(float64(i)); err != nil {
			b.Fatal(err)
		}
	}
	agg := sumAgg(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Run(tbl, agg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryOverheadEmptyTable(b *testing.B) {
	// §4.4: "The overhead for a single query is very low and only a
	// fraction of a second." This measures our fixed per-query cost.
	db := Open(8)
	tbl, _ := db.CreateTable("t", Schema{{Name: "x", Kind: Float}})
	agg := sumAgg(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := db.Run(tbl, agg); err != nil {
			b.Fatal(err)
		}
	}
}
