package engine

import (
	"testing"
)

func TestRunGroupByKey(t *testing.T) {
	db := Open(4)
	tbl, err := db.CreateTable("t", Schema{
		{Name: "g", Kind: Int}, {Name: "v", Kind: Float},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if err := tbl.Insert(int64(i%8), float64(i%10)); err != nil {
			t.Fatal(err)
		}
	}
	groups, err := db.RunGroupByKey(tbl, nil,
		func(r Row) GroupKey { return GroupKey{Int: r.Int(0)} }, sumAgg(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 8 {
		t.Fatalf("groups = %d", len(groups))
	}
	// Cross-check against the string-keyed path on identical data.
	strGroups, err := db.RunGroupByFiltered(tbl, nil,
		func(r Row) string { return string(rune('a' + r.Int(0))) }, sumAgg(1))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range groups {
		sv := strGroups[string(rune('a'+k.Int))]
		if v.(float64) != sv.(float64) {
			t.Fatalf("key %v: keyed sum %v != string-keyed sum %v", k, v, sv)
		}
	}
	// Filtered: only even group ids survive.
	groups, err = db.RunGroupByKey(tbl,
		func(r Row) bool { return r.Int(0)%2 == 0 },
		func(r Row) GroupKey { return GroupKey{Int: r.Int(0)} }, sumAgg(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 4 {
		t.Fatalf("filtered groups = %d", len(groups))
	}
	for k := range groups {
		if k.Int%2 != 0 {
			t.Fatalf("odd group %v survived the filter", k)
		}
	}
	// Composite keys via the Str field co-group correctly.
	groups, err = db.RunGroupByKey(tbl, nil,
		func(r Row) GroupKey { return GroupKey{Int: r.Int(0) % 2, Str: "s"} }, sumAgg(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Fatalf("composite groups = %d", len(groups))
	}
}

func TestRunGroupByKeyAllocs(t *testing.T) {
	// The point of the keyed path: grouping by an Int column must not
	// allocate per row.
	db := Open(1)
	tbl, err := db.CreateTable("t", Schema{
		{Name: "g", Kind: Int}, {Name: "v", Kind: Float},
	})
	if err != nil {
		t.Fatal(err)
	}
	const rows = 4000
	for i := 0; i < rows; i++ {
		if err := tbl.Insert(int64(i%4), 1.0); err != nil {
			t.Fatal(err)
		}
	}
	// Pointer state, so the aggregate itself does not box per row.
	agg := FuncAggregate{
		InitFn: func() any { return new(float64) },
		TransitionFn: func(s any, r Row) any {
			p := s.(*float64)
			*p += r.Float(1)
			return p
		},
		MergeFn: func(a, b any) any {
			p := a.(*float64)
			*p += *b.(*float64)
			return p
		},
		FinalFn: func(s any) (any, error) { return *s.(*float64), nil },
	}
	key := func(r Row) GroupKey { return GroupKey{Int: r.Int(0)} }
	avg := testing.AllocsPerRun(10, func() {
		if _, err := db.RunGroupByKey(tbl, nil, key, agg); err != nil {
			t.Fatal(err)
		}
	})
	// Fixed per-query overhead only (maps, states, goroutine bookkeeping)
	// — far below one allocation per row.
	if avg > rows/10 {
		t.Fatalf("allocs per run = %v, want far fewer than %d", avg, rows)
	}
}
