package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
)

// withGOMAXPROCS runs the rest of the test with the given GOMAXPROCS,
// restoring the previous value afterwards. Raising it above NumCPU is
// legal and forces the engine's worker-pool mode even on a single-core
// machine, so the morsel scheduler is exercised (and race-checked)
// everywhere.
func withGOMAXPROCS(t *testing.T, n int) {
	t.Helper()
	prev := runtime.GOMAXPROCS(n)
	t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
}

func loadParallelTable(t *testing.T, db *DB, rows int) *Table {
	t.Helper()
	tbl, err := db.CreateTable("p", Schema{
		{Name: "g", Kind: Int}, {Name: "v", Kind: Float},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if err := tbl.Insert(int64(i%13), float64(i%997)/7); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func sumFloatAgg() Aggregate {
	return FuncAggregate{
		InitFn: func() any { return 0.0 },
		TransitionFn: func(s any, row Row) any {
			return s.(float64) + row.Float(1)
		},
		MergeFn: func(a, b any) any { return a.(float64) + b.(float64) },
		FinalFn: func(s any) (any, error) { return s, nil },
	}
}

// TestPooledSegmentsMatchSequential proves the worker-pool mode is
// bit-identical to sequential execution: per-segment states fold in row
// order on one worker and merge left-to-right in segment order, so even
// non-associative float sums agree exactly.
func TestPooledSegmentsMatchSequential(t *testing.T) {
	withGOMAXPROCS(t, 1)
	db := Open(7)
	tbl := loadParallelTable(t, db, 3*ParallelRowThreshold)

	seq, err := db.Run(tbl, sumFloatAgg())
	if err != nil {
		t.Fatal(err)
	}
	seqGroups, err := db.RunGroupByKey(tbl, nil,
		func(r Row) GroupKey { return GroupKey{Int: r.Int(0)} }, sumFloatAgg())
	if err != nil {
		t.Fatal(err)
	}

	runtime.GOMAXPROCS(4)
	if w := db.segmentWorkers(tbl); w != 4 {
		t.Fatalf("segmentWorkers = %d, want 4", w)
	}
	for trial := 0; trial < 5; trial++ {
		par, err := db.Run(tbl, sumFloatAgg())
		if err != nil {
			t.Fatal(err)
		}
		if par != seq {
			t.Fatalf("trial %d: pooled sum %v != sequential %v", trial, par, seq)
		}
		parGroups, err := db.RunGroupByKey(tbl, nil,
			func(r Row) GroupKey { return GroupKey{Int: r.Int(0)} }, sumFloatAgg())
		if err != nil {
			t.Fatal(err)
		}
		if len(parGroups) != len(seqGroups) {
			t.Fatalf("trial %d: %d groups, want %d", trial, len(parGroups), len(seqGroups))
		}
		for k, v := range seqGroups {
			if parGroups[k] != v {
				t.Fatalf("trial %d: group %v = %v, want %v", trial, k, parGroups[k], v)
			}
		}
	}
}

// TestPooledBatchedMatchSequential covers the batched drivers under the
// worker pool, including batch-boundary handling (>BatchSize rows per
// segment).
func TestPooledBatchedMatchSequential(t *testing.T) {
	db := Open(5)
	tbl := loadParallelTable(t, db, 6*BatchSize+17)

	run := func() (any, map[GroupKey]any) {
		t.Helper()
		v, err := db.RunBatched(tbl,
			func(int) any { f := 0.0; return &f },
			func(state any, b ColBatch) error {
				acc := state.(*float64)
				for _, v := range b.Floats(1) {
					*acc += v
				}
				return nil
			},
			func(a, b any) any { *a.(*float64) += *b.(*float64); return a })
		if err != nil {
			t.Fatal(err)
		}
		groups, err := db.RunGroupByBatched(tbl,
			func(int) any { return map[GroupKey]any{} },
			func(state any, b ColBatch) error {
				m := state.(map[GroupKey]any)
				gs, vs := b.Ints(0), b.Floats(1)
				for i := range gs {
					k := GroupKey{Int: gs[i]}
					if prev, ok := m[k]; ok {
						m[k] = prev.(float64) + vs[i]
					} else {
						m[k] = vs[i]
					}
				}
				return nil
			},
			func(state any) map[GroupKey]any { return state.(map[GroupKey]any) },
			func(a, b any) any { return a.(float64) + b.(float64) })
		if err != nil {
			t.Fatal(err)
		}
		return *v.(*float64), groups
	}

	withGOMAXPROCS(t, 1)
	seqSum, seqGroups := run()
	runtime.GOMAXPROCS(3)
	for trial := 0; trial < 5; trial++ {
		parSum, parGroups := run()
		if parSum != seqSum {
			t.Fatalf("trial %d: pooled batched sum %v != sequential %v", trial, parSum, seqSum)
		}
		for k, v := range seqGroups {
			if parGroups[k] != v {
				t.Fatalf("trial %d: group %v = %v, want %v", trial, k, parGroups[k], v)
			}
		}
	}
}

// TestSegmentWorkersFallback pins the sequential-fallback rules: small
// tables and single-CPU settings run inline.
func TestSegmentWorkersFallback(t *testing.T) {
	withGOMAXPROCS(t, 4)
	db := Open(4)
	small := loadParallelTable(t, db, ParallelRowThreshold-1)
	if w := db.segmentWorkers(small); w != 1 {
		t.Fatalf("below-threshold table: workers = %d, want 1", w)
	}
	if err := small.Insert(int64(0), 1.0); err != nil {
		t.Fatal(err)
	}
	if w := db.segmentWorkers(small); w != 4 {
		t.Fatalf("at-threshold table: workers = %d, want 4", w)
	}
	runtime.GOMAXPROCS(1)
	if w := db.segmentWorkers(small); w != 1 {
		t.Fatalf("GOMAXPROCS=1: workers = %d, want 1", w)
	}
	runtime.GOMAXPROCS(8)
	if w := db.segmentWorkers(small); w != 4 {
		t.Fatalf("workers must cap at the segment count: got %d, want 4", w)
	}
}

// TestPooledSegmentsErrorOrder proves the pool surfaces the first error
// in segment order, like the old fan-out did.
func TestPooledSegmentsErrorOrder(t *testing.T) {
	withGOMAXPROCS(t, 4)
	db := Open(6)
	tbl := loadParallelTable(t, db, 2*ParallelRowThreshold)
	boom2 := errors.New("boom segment 2")
	boom4 := errors.New("boom segment 4")
	err := db.parallelSegments(context.Background(), tbl, func(i int, seg *Segment) error {
		switch i {
		case 2:
			return boom2
		case 4:
			return boom4
		}
		return nil
	})
	if !errors.Is(err, boom2) {
		t.Fatalf("err = %v, want the lowest-indexed segment's error", err)
	}
}

// TestTableVersion pins which operations count as data mutations.
func TestTableVersion(t *testing.T) {
	db := Open(2)
	tbl, err := db.CreateTable("v", Schema{{Name: "x", Kind: Float}, {Name: "n", Kind: Int}})
	if err != nil {
		t.Fatal(err)
	}
	v0 := tbl.Version()
	if err := tbl.Insert(1.5, int64(1)); err != nil {
		t.Fatal(err)
	}
	if tbl.Version() == v0 {
		t.Fatal("Insert did not bump the version")
	}
	v1 := tbl.Version()
	if err := tbl.InsertHashed(7, 2.5, int64(2)); err != nil {
		t.Fatal(err)
	}
	if tbl.Version() == v1 {
		t.Fatal("InsertHashed did not bump the version")
	}
	v2 := tbl.Version()
	if _, err := db.CountWhere(tbl, func(Row) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if tbl.Version() != v2 {
		t.Fatal("a read-only query bumped the version")
	}
	if err := db.UpdateInt(tbl, "n", func(Row) int64 { return 9 }); err != nil {
		t.Fatal(err)
	}
	if tbl.Version() == v2 {
		t.Fatal("UpdateInt did not bump the version")
	}
	v3 := tbl.Version()
	if err := db.UpdateFloat(tbl, "x", func(Row) float64 { return 0 }); err != nil {
		t.Fatal(err)
	}
	if tbl.Version() == v3 {
		t.Fatal("UpdateFloat did not bump the version")
	}
	v4 := tbl.Version()
	tbl.Truncate()
	if tbl.Version() == v4 {
		t.Fatal("Truncate did not bump the version")
	}
}

// TestHashJoinVectorizedProbe covers the batch-at-a-time probe across
// batch boundaries: duplicate keys (fan-out), misses, and outer
// padding, on segments larger than one ColBatch.
func TestHashJoinVectorizedProbe(t *testing.T) {
	withGOMAXPROCS(t, 2)
	db := Open(3)
	left, err := db.CreateTable("l", Schema{
		{Name: "k", Kind: Int}, {Name: "x", Kind: Float},
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := 3*BatchSize + 11
	for i := 0; i < rows; i++ {
		if err := left.Insert(int64(i%50), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	right, err := db.CreateTable("r", Schema{
		{Name: "k", Kind: Int}, {Name: "tag", Kind: String},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Keys 0..39 match (keys 40..49 miss); key 7 is duplicated → fan-out 2.
	for k := 0; k < 40; k++ {
		if err := right.Insert(int64(k), fmt.Sprintf("t%d", k)); err != nil {
			t.Fatal(err)
		}
	}
	if err := right.Insert(int64(7), "t7b"); err != nil {
		t.Fatal(err)
	}

	inner, err := db.HashJoin("inner_out", left, "k", right, "k")
	if err != nil {
		t.Fatal(err)
	}
	perKey := rows / 50 // left rows per key value (rows%50 == 11 extra for keys 0..10)
	wantInner := 0
	for k := 0; k < 40; k++ {
		n := perKey
		if k < rows%50 {
			n++
		}
		fan := 1
		if k == 7 {
			fan = 2
		}
		wantInner += n * fan
	}
	if got := int(inner.Count()); got != wantInner {
		t.Fatalf("inner join rows = %d, want %d", got, wantInner)
	}

	outer, err := db.HashJoinTemp("outer_out", left, "k", right, "k", true)
	if err != nil {
		t.Fatal(err)
	}
	wantUnmatched := 0
	for k := 40; k < 50; k++ {
		n := perKey
		if k < rows%50 {
			n++
		}
		wantUnmatched += n
	}
	if got := int(outer.Count()); got != wantInner+wantUnmatched {
		t.Fatalf("outer join rows = %d, want %d", got, wantInner+wantUnmatched)
	}
	// Padded rows carry zero values and MatchedCol=false; matched rows
	// carry the right tag and MatchedCol=true.
	schema := outer.Schema()
	ki := schema.MustIndex("k")
	tagi := schema.MustIndex("tag")
	mi := schema.MustIndex(MatchedCol)
	unmatched := 0
	for _, row := range db.Rows(outer) {
		if row[mi].(bool) {
			if row[tagi].(string) == "" {
				t.Fatal("matched row lost its right-side tag")
			}
			continue
		}
		unmatched++
		if row[ki].(int64) < 40 {
			t.Fatalf("key %d should have matched", row[ki])
		}
		if row[tagi].(string) != "" {
			t.Fatalf("padded row has non-zero right column %q", row[tagi])
		}
	}
	if unmatched != wantUnmatched {
		t.Fatalf("unmatched rows = %d, want %d", unmatched, wantUnmatched)
	}
}

// TestMetricsCountersUnderPool proves the observability counters are
// exact — not merely race-free — when queries run concurrently over the
// morsel pool: every dispatch decision, query and scanned row is
// counted exactly once. Run under -race this also exercises the
// counters' atomics against the pool's worker goroutines.
func TestMetricsCountersUnderPool(t *testing.T) {
	withGOMAXPROCS(t, 4)
	db := Open(6)
	tbl := loadParallelTable(t, db, 2*ParallelRowThreshold)

	reg := db.Metrics()
	base := func(name string) int64 { return reg.Counter(name).Value() }
	baseQueries := base("engine_queries")
	baseRows := base("engine_rows_scanned")
	basePar := base("engine_scans_parallel")
	baseSeq := base("engine_scans_sequential")

	const goroutines, perGoroutine = 8, 25
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perGoroutine; i++ {
				if _, err := db.Run(tbl, sumFloatAgg()); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	const queries = goroutines * perGoroutine
	if got := base("engine_queries") - baseQueries; got != queries {
		t.Errorf("engine_queries delta = %d, want %d", got, queries)
	}
	if got, want := base("engine_rows_scanned")-baseRows, int64(queries)*tbl.Count(); got != want {
		t.Errorf("engine_rows_scanned delta = %d, want %d", got, want)
	}
	// Above the row threshold with GOMAXPROCS=4, every scan must take
	// the pooled path.
	if got := base("engine_scans_parallel") - basePar; got != queries {
		t.Errorf("engine_scans_parallel delta = %d, want %d", got, queries)
	}
	if got := base("engine_scans_sequential") - baseSeq; got != 0 {
		t.Errorf("engine_scans_sequential delta = %d, want 0", got)
	}
}

// TestInsertTypeErrorLeavesLanesAligned pins that a mid-row type error
// appends nothing: the failed row must not shift later rows' column
// lanes against each other, and must not bump the version.
func TestInsertTypeErrorLeavesLanesAligned(t *testing.T) {
	db := Open(2)
	tbl, err := db.CreateTable("a", Schema{{Name: "i", Kind: Int}, {Name: "f", Kind: Float}})
	if err != nil {
		t.Fatal(err)
	}
	v0 := tbl.Version()
	if err := tbl.Insert(int64(1), "not a float"); err == nil {
		t.Fatal("Insert with a mistyped value must fail")
	}
	if tbl.Version() != v0 {
		t.Fatal("failed Insert must not bump the version")
	}
	if err := tbl.Insert(int64(2), 3.5); err != nil {
		t.Fatal(err)
	}
	rows := db.Rows(tbl)
	if len(rows) != 1 || rows[0][0] != int64(2) || rows[0][1] != 3.5 {
		t.Fatalf("rows = %v, want [[2 3.5]] (lanes misaligned by failed insert?)", rows)
	}
	if c := tbl.Count(); c != 1 {
		t.Fatalf("Count = %d, want 1", c)
	}
}
