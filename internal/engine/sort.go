package engine

import (
	"runtime"
	"sort"
	"sync"
)

// Parallel stable sort. ORDER BY and window partition ordering were the
// last single-threaded stages of a query: the scan and aggregation
// phases fan out over morsels, then one goroutine sorts the whole
// result. SortStable instead sorts per-worker chunks independently and
// merges the sorted runs pairwise, each round's merges running in
// parallel. Stability — and therefore bit-identical output to a plain
// sort.SliceStable under any GOMAXPROCS — holds because the chunks are
// contiguous index ranges, each chunk is sorted stably, and the merge
// takes the left run's element unless the right run's is strictly
// smaller. A stable sort's output is uniquely determined by the
// comparator, so the chunk count never shows in the result.

// SortStable returns the permutation of [0, n) that sorts it stably by
// less: out[k] is the original index of the k-th smallest element, with
// ties in original order. Callers apply the permutation to their own
// row slices. less must be safe for concurrent calls — above
// ParallelRowThreshold (and with GOMAXPROCS > 1) chunks sort on
// separate goroutines.
func (db *DB) SortStable(n int, less func(a, b int) bool) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n/ParallelRowThreshold {
		// Each chunk should hold at least one threshold's worth of rows;
		// tiny chunks pay merge rounds without amortizing them.
		workers = n / ParallelRowThreshold
	}
	if workers <= 1 {
		db.sortSeq.Inc()
		sort.SliceStable(idx, func(a, b int) bool { return less(idx[a], idx[b]) })
		return idx
	}
	db.sortPar.Inc()

	// Phase 1: sort contiguous chunks stably in parallel.
	chunk := (n + workers - 1) / workers
	runs := make([][2]int, 0, workers)
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		runs = append(runs, [2]int{lo, hi})
		part := idx[lo:hi]
		wg.Add(1)
		go func() {
			defer wg.Done()
			sort.SliceStable(part, func(a, b int) bool { return less(part[a], part[b]) })
		}()
	}
	wg.Wait()

	// Phase 2: merge adjacent runs pairwise until one run remains. Runs
	// are adjacent index ranges, so each merge works in place over
	// idx[lo:hi] with one shared scratch buffer (disjoint slices per
	// merge within a round).
	buf := make([]int, n)
	for len(runs) > 1 {
		merged := make([][2]int, 0, (len(runs)+1)/2)
		for i := 0; i < len(runs); i += 2 {
			if i+1 == len(runs) {
				merged = append(merged, runs[i])
				continue
			}
			lo, mid, hi := runs[i][0], runs[i][1], runs[i+1][1]
			merged = append(merged, [2]int{lo, hi})
			wg.Add(1)
			go func() {
				defer wg.Done()
				mergeRuns(idx, buf, lo, mid, hi, less)
			}()
		}
		wg.Wait()
		runs = merged
	}
	return idx
}

// mergeRuns stably merges the sorted runs idx[lo:mid] and idx[mid:hi]
// through buf back into idx[lo:hi]. The left run's element is emitted
// unless the right run's is strictly smaller, preserving original order
// among equals.
func mergeRuns(idx, buf []int, lo, mid, hi int, less func(a, b int) bool) {
	i, j, k := lo, mid, lo
	for i < mid && j < hi {
		if less(idx[j], idx[i]) {
			buf[k] = idx[j]
			j++
		} else {
			buf[k] = idx[i]
			i++
		}
		k++
	}
	k += copy(buf[k:], idx[i:mid])
	k += copy(buf[k:], idx[j:hi])
	copy(idx[lo:hi], buf[lo:hi])
}
