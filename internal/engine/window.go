package engine

import (
	"context"
	"fmt"
	"sync"
)

// WindowSpec describes an ordered, partitioned window computation — the
// §3.1.2 "Window Aggregates for Stateful Iteration" pattern: "For settings
// where the current iteration depends on previous iterations, SQL's
// windowed aggregate feature can be used to carry state across
// iterations", the construction Wang et al. used for in-database MCMC.
type WindowSpec struct {
	// PartitionBy groups rows; nil puts everything in one partition
	// (keyed "").
	PartitionBy func(Row) string
	// OrderBy orders rows within each partition (required).
	OrderBy func(a, b Row) bool
}

// RunWindow folds each partition's rows in order, carrying state across
// rows and emitting one output value per row:
//
//	SELECT step(...) OVER (PARTITION BY p ORDER BY o) FROM t
//
// init produces each partition's starting state; step consumes the state
// and a row, returning the updated state and that row's output value.
// Partitions are processed in parallel; within a partition the fold is
// strictly sequential in the specified order.
func (db *DB) RunWindow(t *Table, spec WindowSpec, init func() any, step func(state any, row Row) (any, any)) (map[string][]any, error) {
	return db.RunWindowCtx(context.Background(), t, spec, init, step)
}

// RunWindowCtx is RunWindow with cancellation checked at segment
// boundaries during the partition gather.
func (db *DB) RunWindowCtx(ctx context.Context, t *Table, spec WindowSpec, init func() any, step func(state any, row Row) (any, any)) (map[string][]any, error) {
	if spec.OrderBy == nil {
		return nil, fmt.Errorf("engine: RunWindow requires OrderBy")
	}
	db.queries.Add(1)
	// The latch spans gather AND compute: partitions hold Row handles
	// into segment storage, which must not move until step() is done.
	defer latchRead(t)()
	// Gather row handles per partition. Row handles are stable: they
	// reference (segment, index) positions.
	parts := map[string][]Row{}
	for _, seg := range t.segs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for r := 0; r < seg.n; r++ {
			row := Row{seg: seg, idx: r}
			key := ""
			if spec.PartitionBy != nil {
				key = spec.PartitionBy(row)
			}
			parts[key] = append(parts[key], row)
		}
		db.rowsScanned.Add(int64(seg.n))
	}
	return db.RunWindowGathered(parts, spec.OrderBy, init, step)
}

// RunWindowGathered is RunWindow for callers that gathered the
// partitions themselves — e.g. a vectorized scan that batched the
// partition-key evaluation. Each partition's values come back in its
// rows' sorted order; ties keep the order rows appear in the input
// slice, so gatherers must append rows in a deterministic order.
func (db *DB) RunWindowGathered(parts map[string][]Row, orderBy func(a, b Row) bool, init func() any, step func(state any, row Row) (any, any)) (map[string][]any, error) {
	if orderBy == nil {
		return nil, fmt.Errorf("engine: RunWindowGathered requires an order")
	}
	out := make(map[string][]any, len(parts))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for key, rows := range parts {
		wg.Add(1)
		go func(key string, rows []Row) {
			defer wg.Done()
			// Large partitions sort with per-worker partial sorts + a
			// stable pairwise merge (SortStable); small ones inline. The
			// fold itself is strictly sequential in the sorted order.
			perm := db.SortStable(len(rows), func(a, b int) bool { return orderBy(rows[a], rows[b]) })
			sorted := make([]Row, len(rows))
			for i, p := range perm {
				sorted[i] = rows[p]
			}
			state := init()
			vals := make([]any, len(rows))
			for i, row := range sorted {
				state, vals[i] = step(state, row)
			}
			mu.Lock()
			out[key] = vals
			mu.Unlock()
		}(key, rows)
	}
	wg.Wait()
	return out, nil
}
