package engine

import (
	"errors"
	"testing"
)

func buildJoinTables(t *testing.T, db *DB) (*Table, *Table) {
	t.Helper()
	facts, err := db.CreateTable("facts", Schema{
		{Name: "k", Kind: Int},
		{Name: "x", Kind: Float},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if err := facts.Insert(int64(i%3), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	dims, err := db.CreateTable("dims", Schema{
		{Name: "k", Kind: Int},
		{Name: "name", Kind: String},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range []string{"zero", "one", "two"} {
		if err := dims.Insert(int64(i), name); err != nil {
			t.Fatal(err)
		}
	}
	return facts, dims
}

func TestHashJoinInner(t *testing.T) {
	db := Open(3)
	facts, dims := buildJoinTables(t, db)
	out, err := db.HashJoin("joined", facts, "k", dims, "k")
	if err != nil {
		t.Fatal(err)
	}
	if out.Count() != 12 {
		t.Fatalf("joined rows = %d", out.Count())
	}
	// Collided key column is prefixed.
	schema := out.Schema()
	if schema.Index("k") < 0 || schema.Index("dims_k") < 0 || schema.Index("name") < 0 {
		t.Fatalf("joined schema = %v", schema)
	}
	// Every row's name matches its key.
	names := []string{"zero", "one", "two"}
	ki, ni := schema.Index("k"), schema.Index("name")
	err = db.ForEachSegment(out, func(_ int, r Row) error {
		if names[r.Int(ki)] != r.Str(ni) {
			t.Errorf("key %d joined to %q", r.Int(ki), r.Str(ni))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHashJoinDropsUnmatched(t *testing.T) {
	db := Open(2)
	facts, _ := db.CreateTable("f", Schema{{Name: "k", Kind: Int}})
	dims, _ := db.CreateTable("d", Schema{{Name: "k", Kind: Int}})
	for i := 0; i < 6; i++ {
		if err := facts.Insert(int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := dims.Insert(int64(2)); err != nil {
		t.Fatal(err)
	}
	if err := dims.Insert(int64(4)); err != nil {
		t.Fatal(err)
	}
	out, err := db.HashJoin("j", facts, "k", dims, "k")
	if err != nil {
		t.Fatal(err)
	}
	if out.Count() != 2 {
		t.Fatalf("inner join kept %d rows", out.Count())
	}
}

func TestHashJoinDuplicateBuildKeys(t *testing.T) {
	// One-to-many: each left row matches every duplicate right row.
	db := Open(2)
	left, _ := db.CreateTable("l", Schema{{Name: "k", Kind: String}})
	right, _ := db.CreateTable("r", Schema{{Name: "k", Kind: String}, {Name: "v", Kind: Float}})
	if err := left.Insert("a"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := right.Insert("a", float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	out, err := db.HashJoin("j", left, "k", right, "k")
	if err != nil {
		t.Fatal(err)
	}
	if out.Count() != 3 {
		t.Fatalf("one-to-many join produced %d rows", out.Count())
	}
}

func TestHashJoinErrors(t *testing.T) {
	db := Open(2)
	a, _ := db.CreateTable("a", Schema{{Name: "k", Kind: Int}, {Name: "f", Kind: Float}})
	b, _ := db.CreateTable("b", Schema{{Name: "k", Kind: String}})
	if _, err := db.HashJoin("x1", a, "zz", b, "k"); !errors.Is(err, ErrNoColumn) {
		t.Fatalf("want ErrNoColumn, got %v", err)
	}
	if _, err := db.HashJoin("x2", a, "k", b, "zz"); !errors.Is(err, ErrNoColumn) {
		t.Fatalf("want ErrNoColumn, got %v", err)
	}
	if _, err := db.HashJoin("x3", a, "k", b, "k"); !errors.Is(err, ErrType) {
		t.Fatalf("mismatched key kinds: %v", err)
	}
	if _, err := db.HashJoin("x4", a, "f", a, "f"); !errors.Is(err, ErrType) {
		t.Fatalf("float keys should fail: %v", err)
	}
}

func TestHashJoinTempOuter(t *testing.T) {
	db := Open(2)
	facts, _ := db.CreateTable("f", Schema{{Name: "k", Kind: Int}, {Name: "x", Kind: Float}})
	dims, _ := db.CreateTable("d", Schema{{Name: "k", Kind: Int}, {Name: "name", Kind: String}})
	for i := 0; i < 6; i++ {
		if err := facts.Insert(int64(i), float64(i)*1.5); err != nil {
			t.Fatal(err)
		}
	}
	if err := dims.Insert(int64(2), "two"); err != nil {
		t.Fatal(err)
	}
	if err := dims.Insert(int64(4), "four"); err != nil {
		t.Fatal(err)
	}
	out, err := db.HashJoinTemp("j", facts, "k", dims, "k", true)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Temp() {
		t.Fatal("HashJoinTemp output should be a temp table")
	}
	// Every left row survives; unmatched rows are padded + marked.
	if out.Count() != 6 {
		t.Fatalf("outer join kept %d rows, want 6", out.Count())
	}
	schema := out.Schema()
	mi := schema.Index(MatchedCol)
	if mi != len(schema)-1 {
		t.Fatalf("matched marker at %d in %v", mi, schema)
	}
	ki, ni := schema.Index("k"), schema.Index("name")
	matched := 0
	err = db.ForEachSegment(out, func(_ int, r Row) error {
		if r.Bool(mi) {
			matched++
			if r.Str(ni) == "" {
				t.Errorf("matched row k=%d has empty name", r.Int(ki))
			}
		} else if r.Str(ni) != "" {
			t.Errorf("unmatched row k=%d not zero-padded: %q", r.Int(ki), r.Str(ni))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if matched != 2 {
		t.Fatalf("matched rows = %d, want 2", matched)
	}
}

func TestJoinSchemaMatchesHashJoin(t *testing.T) {
	db := Open(2)
	facts, dims := buildJoinTables(t, db)
	want, err := JoinSchema(facts, dims, false)
	if err != nil {
		t.Fatal(err)
	}
	out, err := db.HashJoin("joined2", facts, "k", dims, "k")
	if err != nil {
		t.Fatal(err)
	}
	got := out.Schema()
	if len(got) != len(want) {
		t.Fatalf("schema lengths differ: %v vs %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("schema[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}
