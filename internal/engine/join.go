package engine

import (
	"fmt"
)

// MatchedCol is the hidden marker column an outer join appends to its
// output: true on rows that found a build-side match, false on the
// null-padded left rows. The engine's columnar storage has no NULL
// representation, so consumers (the SQL front-end) use this marker to
// reconstruct NULL semantics for the padded right-side columns.
const MatchedCol = "__matched"

// JoinSchema computes the output schema of a hash join without running
// it: all left columns, then all right columns with name collisions
// prefixed by the right table's name and an underscore, plus the
// MatchedCol marker when outer is set. It is exported so a planner can
// resolve column references against the joined shape at plan time.
func JoinSchema(left, right *Table, outer bool) (Schema, error) {
	taken := map[string]bool{}
	schema := make(Schema, 0, len(left.schema)+len(right.schema)+1)
	for _, c := range left.schema {
		taken[c.Name] = true
		schema = append(schema, c)
	}
	for _, c := range right.schema {
		name := c.Name
		if taken[name] {
			name = right.name + "_" + name
		}
		if taken[name] {
			return nil, fmt.Errorf("engine: cannot disambiguate column %q", c.Name)
		}
		taken[name] = true
		schema = append(schema, Column{Name: name, Kind: c.Kind})
	}
	if outer {
		if taken[MatchedCol] {
			return nil, fmt.Errorf("engine: column %q collides with the outer-join marker", MatchedCol)
		}
		schema = append(schema, Column{Name: MatchedCol, Kind: Bool})
	}
	return schema, nil
}

// HashJoin performs an inner equi-join of two tables into a new table:
//
//	CREATE TABLE dst AS
//	SELECT l.*, r.* FROM left l JOIN right r ON l.leftKey = r.rightKey
//
// The join keys must be Int or String columns of matching kind. The right
// side is broadcast: its rows are hashed into one in-memory table that
// every left segment probes, the plan a parallel DBMS picks when the right
// side is small (dimension tables, group keys — the §4.2.1 "join
// construct"). Output rows stay on their left row's segment, so the join
// is local and needs no data movement on the probe side.
//
// Column-name collisions are resolved by prefixing right-side columns with
// the right table's name and an underscore (see JoinSchema).
func (db *DB) HashJoin(dst string, left *Table, leftKey string, right *Table, rightKey string) (*Table, error) {
	return db.hashJoin(dst, left, leftKey, right, rightKey, left.temp || right.temp, false)
}

// HashJoinTemp materializes a hash join into a uniquely named temporary
// table (prefix-based, like CreateTempTable). With outer set it performs
// a LEFT OUTER join: left rows without a build-side match are emitted
// once, their right-side columns padded with zero values and the
// MatchedCol marker set to false — the null-padding wrapper the SQL
// front-end's LEFT JOIN lowers onto.
func (db *DB) HashJoinTemp(prefix string, left *Table, leftKey string, right *Table, rightKey string, outer bool) (*Table, error) {
	return db.hashJoin(db.nextTempName(prefix), left, leftKey, right, rightKey, true, outer)
}

func (db *DB) hashJoin(dst string, left *Table, leftKey string, right *Table, rightKey string, temp, outer bool) (*Table, error) {
	lk := left.schema.Index(leftKey)
	if lk < 0 {
		return nil, fmt.Errorf("%w: %q", ErrNoColumn, leftKey)
	}
	rk := right.schema.Index(rightKey)
	if rk < 0 {
		return nil, fmt.Errorf("%w: %q", ErrNoColumn, rightKey)
	}
	kind := left.schema[lk].Kind
	if kind != right.schema[rk].Kind {
		return nil, fmt.Errorf("%w: join keys %s vs %s", ErrType, kind, right.schema[rk].Kind)
	}
	if kind != Int && kind != String {
		return nil, fmt.Errorf("%w: join keys must be Int or String, got %s", ErrType, kind)
	}

	schema, err := JoinSchema(left, right, outer)
	if err != nil {
		return nil, err
	}
	out, err := db.createTable(dst, schema, temp)
	if err != nil {
		return nil, err
	}

	// Build side: broadcast hash table over the right rows.
	type ref struct {
		seg *Segment
		idx int
	}
	build := map[any][]ref{}
	for _, seg := range right.segs {
		for r := 0; r < seg.n; r++ {
			var key any
			if kind == Int {
				key = seg.cols[rk].ints[r]
			} else {
				key = seg.cols[rk].strs[r]
			}
			build[key] = append(build[key], ref{seg: seg, idx: r})
		}
		db.rowsScanned.Add(int64(seg.n))
	}

	// Probe side: segment-parallel scan of the left table; matches append
	// into the output segment with the same index. Outer joins emit
	// unmatched left rows once, zero-padded, with MatchedCol=false.
	nl := len(left.schema)
	matchedIdx := len(schema) - 1 // only meaningful when outer
	err = db.parallelSegments(left, func(i int, seg *Segment) error {
		dseg := out.segs[i]
		for r := 0; r < seg.n; r++ {
			var key any
			if kind == Int {
				key = seg.cols[lk].ints[r]
			} else {
				key = seg.cols[lk].strs[r]
			}
			matches := build[key]
			for _, m := range matches {
				for c, col := range left.schema {
					copyCell(&dseg.cols[c], col.Kind, seg, c, r)
				}
				for c, col := range right.schema {
					copyCell(&dseg.cols[nl+c], col.Kind, m.seg, c, m.idx)
				}
				if outer {
					dseg.cols[matchedIdx].bools = append(dseg.cols[matchedIdx].bools, true)
				}
				dseg.n++
			}
			if outer && len(matches) == 0 {
				for c, col := range left.schema {
					copyCell(&dseg.cols[c], col.Kind, seg, c, r)
				}
				for c, col := range right.schema {
					appendZero(&dseg.cols[nl+c], col.Kind)
				}
				dseg.cols[matchedIdx].bools = append(dseg.cols[matchedIdx].bools, false)
				dseg.n++
			}
		}
		db.rowsScanned.Add(int64(seg.n))
		return nil
	})
	if err != nil {
		return nil, err
	}
	var total int64
	for _, seg := range out.segs {
		total += int64(seg.n)
	}
	out.mu.Lock()
	out.totalRows = total
	out.mu.Unlock()
	db.queries.Add(1)
	return out, nil
}

// copyCell appends the (src, col, row) cell into dst.
func copyCell(dst *colData, kind Kind, src *Segment, col, row int) {
	switch kind {
	case Float:
		dst.floats = append(dst.floats, src.cols[col].floats[row])
	case Vector:
		dst.vecs = append(dst.vecs, src.cols[col].vecs[row])
	case Int:
		dst.ints = append(dst.ints, src.cols[col].ints[row])
	case String:
		dst.strs = append(dst.strs, src.cols[col].strs[row])
	case Bool:
		dst.bools = append(dst.bools, src.cols[col].bools[row])
	}
}

// appendZero appends the kind's zero value into dst — the storage-level
// stand-in for NULL on the padded side of an outer join.
func appendZero(dst *colData, kind Kind) {
	switch kind {
	case Float:
		dst.floats = append(dst.floats, 0)
	case Vector:
		dst.vecs = append(dst.vecs, nil)
	case Int:
		dst.ints = append(dst.ints, 0)
	case String:
		dst.strs = append(dst.strs, "")
	case Bool:
		dst.bools = append(dst.bools, false)
	}
}
