package engine

import (
	"context"
	"fmt"
	"time"
)

// MatchedCol is the hidden marker column an outer join appends to its
// output: true on rows that found a build-side match, false on the
// null-padded left rows. The engine's columnar storage has no NULL
// representation, so consumers (the SQL front-end) use this marker to
// reconstruct NULL semantics for the padded right-side columns.
const MatchedCol = "__matched"

// JoinSchema computes the output schema of a hash join without running
// it: all left columns, then all right columns with name collisions
// prefixed by the right table's name and an underscore, plus the
// MatchedCol marker when outer is set. It is exported so a planner can
// resolve column references against the joined shape at plan time.
func JoinSchema(left, right *Table, outer bool) (Schema, error) {
	taken := map[string]bool{}
	schema := make(Schema, 0, len(left.schema)+len(right.schema)+1)
	for _, c := range left.schema {
		taken[c.Name] = true
		schema = append(schema, c)
	}
	for _, c := range right.schema {
		name := c.Name
		if taken[name] {
			name = right.name + "_" + name
		}
		if taken[name] {
			return nil, fmt.Errorf("engine: cannot disambiguate column %q", c.Name)
		}
		taken[name] = true
		schema = append(schema, Column{Name: name, Kind: c.Kind})
	}
	if outer {
		if taken[MatchedCol] {
			return nil, fmt.Errorf("engine: column %q collides with the outer-join marker", MatchedCol)
		}
		schema = append(schema, Column{Name: MatchedCol, Kind: Bool})
	}
	return schema, nil
}

// HashJoin performs an inner equi-join of two tables into a new table:
//
//	CREATE TABLE dst AS
//	SELECT l.*, r.* FROM left l JOIN right r ON l.leftKey = r.rightKey
//
// The join keys must be Int or String columns of matching kind. The right
// side is broadcast: its rows are hashed into one in-memory table that
// every left segment probes, the plan a parallel DBMS picks when the right
// side is small (dimension tables, group keys — the §4.2.1 "join
// construct"). Output rows stay on their left row's segment, so the join
// is local and needs no data movement on the probe side.
//
// Column-name collisions are resolved by prefixing right-side columns with
// the right table's name and an underscore (see JoinSchema).
func (db *DB) HashJoin(dst string, left *Table, leftKey string, right *Table, rightKey string) (*Table, error) {
	return db.hashJoin(context.Background(), dst, left, leftKey, right, rightKey, left.temp || right.temp, false)
}

// HashJoinTemp materializes a hash join into a uniquely named temporary
// table (prefix-based, like CreateTempTable). With outer set it performs
// a LEFT OUTER join: left rows without a build-side match are emitted
// once, their right-side columns padded with zero values and the
// MatchedCol marker set to false — the null-padding wrapper the SQL
// front-end's LEFT JOIN lowers onto.
func (db *DB) HashJoinTemp(prefix string, left *Table, leftKey string, right *Table, rightKey string, outer bool) (*Table, error) {
	return db.hashJoin(context.Background(), db.nextTempName(prefix), left, leftKey, right, rightKey, true, outer)
}

// HashJoinTempCtx is HashJoinTemp with cancellation during the probe
// phase (the build side is scanned sequentially and is usually the small
// table).
func (db *DB) HashJoinTempCtx(ctx context.Context, prefix string, left *Table, leftKey string, right *Table, rightKey string, outer bool) (*Table, error) {
	return db.hashJoin(ctx, db.nextTempName(prefix), left, leftKey, right, rightKey, true, outer)
}

func (db *DB) hashJoin(ctx context.Context, dst string, left *Table, leftKey string, right *Table, rightKey string, temp, outer bool) (*Table, error) {
	buildStart := time.Now()
	lk := left.schema.Index(leftKey)
	if lk < 0 {
		return nil, fmt.Errorf("%w: %q", ErrNoColumn, leftKey)
	}
	rk := right.schema.Index(rightKey)
	if rk < 0 {
		return nil, fmt.Errorf("%w: %q", ErrNoColumn, rightKey)
	}
	kind := left.schema[lk].Kind
	if kind != right.schema[rk].Kind {
		return nil, fmt.Errorf("%w: join keys %s vs %s", ErrType, kind, right.schema[rk].Kind)
	}
	if kind != Int && kind != String {
		return nil, fmt.Errorf("%w: join keys must be Int or String, got %s", ErrType, kind)
	}

	schema, err := JoinSchema(left, right, outer)
	if err != nil {
		return nil, err
	}
	out, err := db.createTable(dst, schema, temp)
	if err != nil {
		return nil, err
	}

	// Both inputs stay latched for the whole build + probe: the probe
	// materializes right-side rows through rowRefs captured at build
	// time, so the right table must not move underneath it either.
	defer latchRead(left, right)()

	// Build side: broadcast hash table over the right rows, keyed by the
	// unboxed column value (no per-row interface allocation).
	var buildI map[int64][]rowRef
	var buildS map[string][]rowRef
	if kind == Int {
		buildI = make(map[int64][]rowRef, int(right.Count()))
	} else {
		buildS = make(map[string][]rowRef, int(right.Count()))
	}
	for _, seg := range right.segs {
		if kind == Int {
			lane := seg.cols[rk].ints[:seg.n]
			for r, k := range lane {
				buildI[k] = append(buildI[k], rowRef{seg: seg, idx: int32(r)})
			}
		} else {
			lane := seg.cols[rk].strs[:seg.n]
			for r, k := range lane {
				buildS[k] = append(buildS[k], rowRef{seg: seg, idx: int32(r)})
			}
		}
		db.rowsScanned.Add(int64(seg.n))
	}

	// Probe side: segment-parallel scan of the left table, vectorized —
	// each worker walks its segment's key lane one ColBatch at a time,
	// gathers the (left row, right ref) match pairs for the whole batch,
	// then materializes them column-by-column so the type dispatch runs
	// once per column per batch instead of once per cell. Matches append
	// into the output segment with the same index, so the join stays
	// local to the probe row's segment. Outer joins emit unmatched left
	// rows once with a nil right ref, which materializes as zero padding
	// with MatchedCol=false.
	err = db.parallelSegmentsLatched(ctx, left, func(i int, seg *Segment) error {
		dseg := out.segs[i]
		lefts := make([]int32, 0, BatchSize)
		rights := make([]rowRef, 0, BatchSize)
		err := forEachBatch(seg, func(b ColBatch) error {
			lefts, rights = lefts[:0], rights[:0]
			off := int32(b.Offset())
			if kind == Int {
				for j, k := range b.Ints(lk) {
					matches := buildI[k]
					for _, m := range matches {
						lefts = append(lefts, off+int32(j))
						rights = append(rights, m)
					}
					if outer && len(matches) == 0 {
						lefts = append(lefts, off+int32(j))
						rights = append(rights, rowRef{})
					}
				}
			} else {
				for j, k := range b.Strings(lk) {
					matches := buildS[k]
					for _, m := range matches {
						lefts = append(lefts, off+int32(j))
						rights = append(rights, m)
					}
					if outer && len(matches) == 0 {
						lefts = append(lefts, off+int32(j))
						rights = append(rights, rowRef{})
					}
				}
			}
			appendJoinRows(dseg, left.schema, seg, lefts, right.schema, rights, outer)
			return nil
		})
		if err != nil {
			return err
		}
		db.rowsScanned.Add(int64(seg.n))
		return nil
	})
	if err != nil {
		_ = db.DropTable(dst) // don't leak a half-built join table
		return nil, err
	}
	var total int64
	for _, seg := range out.segs {
		total += int64(seg.n)
	}
	out.mu.Lock()
	out.totalRows = total
	out.mu.Unlock()
	db.queries.Add(1)
	db.joinBuilds.Inc()
	db.joinBuild.Observe(time.Since(buildStart))
	return out, nil
}

// rowRef points at one build-side row; a nil seg is the outer join's
// null-pad marker.
type rowRef struct {
	seg *Segment
	idx int32
}

// appendJoinRows bulk-appends one probe batch's matches into the output
// segment: for every output row k, the left columns of leftSeg row
// lefts[k] followed by the right columns of rights[k] (zero-padded when
// rights[k].seg is nil), plus the matched marker when outer is set.
// Copies run lane-wise, one column at a time.
func appendJoinRows(dseg *Segment, leftSchema Schema, leftSeg *Segment, lefts []int32, rightSchema Schema, rights []rowRef, outer bool) {
	if len(lefts) == 0 {
		return
	}
	for c, col := range leftSchema {
		dst := &dseg.cols[c]
		switch col.Kind {
		case Float:
			src := leftSeg.cols[c].floats
			for _, li := range lefts {
				dst.floats = append(dst.floats, src[li])
			}
		case Vector:
			src := leftSeg.cols[c].vecs
			for _, li := range lefts {
				dst.vecs = append(dst.vecs, src[li])
			}
		case Int:
			src := leftSeg.cols[c].ints
			for _, li := range lefts {
				dst.ints = append(dst.ints, src[li])
			}
		case String:
			src := leftSeg.cols[c].strs
			for _, li := range lefts {
				dst.strs = append(dst.strs, src[li])
			}
		case Bool:
			src := leftSeg.cols[c].bools
			for _, li := range lefts {
				dst.bools = append(dst.bools, src[li])
			}
		}
	}
	nl := len(leftSchema)
	for c, col := range rightSchema {
		dst := &dseg.cols[nl+c]
		switch col.Kind {
		case Float:
			for _, m := range rights {
				if m.seg == nil {
					dst.floats = append(dst.floats, 0)
				} else {
					dst.floats = append(dst.floats, m.seg.cols[c].floats[m.idx])
				}
			}
		case Vector:
			for _, m := range rights {
				if m.seg == nil {
					dst.vecs = append(dst.vecs, nil)
				} else {
					dst.vecs = append(dst.vecs, m.seg.cols[c].vecs[m.idx])
				}
			}
		case Int:
			for _, m := range rights {
				if m.seg == nil {
					dst.ints = append(dst.ints, 0)
				} else {
					dst.ints = append(dst.ints, m.seg.cols[c].ints[m.idx])
				}
			}
		case String:
			for _, m := range rights {
				if m.seg == nil {
					dst.strs = append(dst.strs, "")
				} else {
					dst.strs = append(dst.strs, m.seg.cols[c].strs[m.idx])
				}
			}
		case Bool:
			for _, m := range rights {
				if m.seg == nil {
					dst.bools = append(dst.bools, false)
				} else {
					dst.bools = append(dst.bools, m.seg.cols[c].bools[m.idx])
				}
			}
		}
	}
	if outer {
		marker := &dseg.cols[nl+len(rightSchema)]
		for _, m := range rights {
			marker.bools = append(marker.bools, m.seg != nil)
		}
	}
	dseg.n += len(lefts)
}
