package engine

import (
	"fmt"
)

// HashJoin performs an inner equi-join of two tables into a new table:
//
//	CREATE TABLE dst AS
//	SELECT l.*, r.* FROM left l JOIN right r ON l.leftKey = r.rightKey
//
// The join keys must be Int or String columns of matching kind. The right
// side is broadcast: its rows are hashed into one in-memory table that
// every left segment probes, the plan a parallel DBMS picks when the right
// side is small (dimension tables, group keys — the §4.2.1 "join
// construct"). Output rows stay on their left row's segment, so the join
// is local and needs no data movement on the probe side.
//
// Column-name collisions are resolved by prefixing right-side columns with
// the right table's name and an underscore.
func (db *DB) HashJoin(dst string, left *Table, leftKey string, right *Table, rightKey string) (*Table, error) {
	lk := left.schema.Index(leftKey)
	if lk < 0 {
		return nil, fmt.Errorf("%w: %q", ErrNoColumn, leftKey)
	}
	rk := right.schema.Index(rightKey)
	if rk < 0 {
		return nil, fmt.Errorf("%w: %q", ErrNoColumn, rightKey)
	}
	kind := left.schema[lk].Kind
	if kind != right.schema[rk].Kind {
		return nil, fmt.Errorf("%w: join keys %s vs %s", ErrType, kind, right.schema[rk].Kind)
	}
	if kind != Int && kind != String {
		return nil, fmt.Errorf("%w: join keys must be Int or String, got %s", ErrType, kind)
	}

	// Output schema: all left columns, then all right columns with
	// collisions prefixed.
	taken := map[string]bool{}
	schema := make(Schema, 0, len(left.schema)+len(right.schema))
	for _, c := range left.schema {
		taken[c.Name] = true
		schema = append(schema, c)
	}
	for _, c := range right.schema {
		name := c.Name
		if taken[name] {
			name = right.name + "_" + name
		}
		if taken[name] {
			return nil, fmt.Errorf("engine: cannot disambiguate column %q", c.Name)
		}
		taken[name] = true
		schema = append(schema, Column{Name: name, Kind: c.Kind})
	}
	out, err := db.createTable(dst, schema, left.temp || right.temp)
	if err != nil {
		return nil, err
	}

	// Build side: broadcast hash table over the right rows.
	type ref struct {
		seg *Segment
		idx int
	}
	build := map[any][]ref{}
	for _, seg := range right.segs {
		for r := 0; r < seg.n; r++ {
			var key any
			if kind == Int {
				key = seg.cols[rk].ints[r]
			} else {
				key = seg.cols[rk].strs[r]
			}
			build[key] = append(build[key], ref{seg: seg, idx: r})
		}
		db.rowsScanned.Add(int64(seg.n))
	}

	// Probe side: segment-parallel scan of the left table; matches append
	// into the output segment with the same index.
	nl := len(left.schema)
	err = db.parallelSegments(left, func(i int, seg *Segment) error {
		dseg := out.segs[i]
		for r := 0; r < seg.n; r++ {
			var key any
			if kind == Int {
				key = seg.cols[lk].ints[r]
			} else {
				key = seg.cols[lk].strs[r]
			}
			for _, m := range build[key] {
				for c, col := range left.schema {
					copyCell(&dseg.cols[c], col.Kind, seg, c, r)
				}
				for c, col := range right.schema {
					copyCell(&dseg.cols[nl+c], col.Kind, m.seg, c, m.idx)
				}
				dseg.n++
			}
		}
		db.rowsScanned.Add(int64(seg.n))
		return nil
	})
	if err != nil {
		return nil, err
	}
	var total int64
	for _, seg := range out.segs {
		total += int64(seg.n)
	}
	out.mu.Lock()
	out.totalRows = total
	out.mu.Unlock()
	db.queries.Add(1)
	return out, nil
}

// copyCell appends the (src, col, row) cell into dst.
func copyCell(dst *colData, kind Kind, src *Segment, col, row int) {
	switch kind {
	case Float:
		dst.floats = append(dst.floats, src.cols[col].floats[row])
	case Vector:
		dst.vecs = append(dst.vecs, src.cols[col].vecs[row])
	case Int:
		dst.ints = append(dst.ints, src.cols[col].ints[row])
	case String:
		dst.strs = append(dst.strs, src.cols[col].strs[row])
	case Bool:
		dst.bools = append(dst.bools, src.cols[col].bools[row])
	}
}
