package engine

import (
	"math/rand"
	"sort"
	"testing"
)

// TestTableMorselsDecomposition pins the morsel invariants the drivers
// rely on: morsels appear in (segment, offset) order, cover every row of
// every segment exactly once, never exceed MorselRows, split only at
// MorselRows boundaries (which are BatchSize-aligned), keep small and
// empty segments whole, and agree with ScanMorsels. The decomposition is
// a function of the table's shape only.
func TestTableMorselsDecomposition(t *testing.T) {
	cases := []struct{ segments, rows int }{
		{3, 0},                  // empty table: one morsel per (empty) segment
		{2, 7},                  // tiny
		{2, 2 * MorselRows},     // segments land exactly at the split threshold
		{2, 2*MorselRows + 123}, // segments just above it
		{1, 3*MorselRows + 1},   // one big segment, ragged tail
	}
	for _, tc := range cases {
		db := Open(tc.segments)
		tbl, err := db.CreateTable("m", Schema{{Name: "x", Kind: Int}})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < tc.rows; i++ {
			if err := tbl.Insert(int64(i)); err != nil {
				t.Fatal(err)
			}
		}
		ms := tableMorsels(tbl)
		if got := db.ScanMorsels(tbl); got != len(ms) {
			t.Fatalf("%+v: ScanMorsels = %d, tableMorsels has %d", tc, got, len(ms))
		}
		segIdx, nextOff := 0, 0
		segs := tbl.Segments()
		for _, m := range ms {
			// Advance over segments whose rows are fully covered.
			for m.segIdx != segIdx {
				if nextOff != segs[segIdx].Len() {
					t.Fatalf("%+v: segment %d covered to %d of %d before moving on",
						tc, segIdx, nextOff, segs[segIdx].Len())
				}
				segIdx++
				nextOff = 0
			}
			if m.off != nextOff {
				t.Fatalf("%+v: segment %d morsel starts at %d, want %d", tc, segIdx, m.off, nextOff)
			}
			if m.n > MorselRows {
				t.Fatalf("%+v: morsel of %d rows exceeds MorselRows", tc, m.n)
			}
			if m.off%MorselRows != 0 {
				t.Fatalf("%+v: morsel offset %d not MorselRows-aligned", tc, m.off)
			}
			if seg := segs[segIdx]; seg.Len() <= MorselRows && m.n != seg.Len() {
				t.Fatalf("%+v: small segment %d split into a %d-row morsel", tc, segIdx, m.n)
			}
			nextOff = m.off + m.n
		}
		for ; segIdx < len(segs); segIdx++ {
			if nextOff != segs[segIdx].Len() {
				t.Fatalf("%+v: segment %d covered to %d of %d rows", tc, segIdx, nextOff, segs[segIdx].Len())
			}
			nextOff = 0
		}
	}
}

// TestForEachBatchMorselOrder proves ForEachBatch hands each morsel's
// batches to exactly one callback index, with BatchSize-aligned offsets
// — sub-segment morsels must see the same batch windows a whole-segment
// scan would — and that morsel indices cover [0, ScanMorsels) exactly.
func TestForEachBatchMorselOrder(t *testing.T) {
	withGOMAXPROCS(t, 4)
	db := Open(2)
	tbl, err := db.CreateTable("mb", Schema{{Name: "x", Kind: Int}})
	if err != nil {
		t.Fatal(err)
	}
	rows := 2*MorselRows + 3*BatchSize + 13 // both segments split into multiple morsels
	for i := 0; i < rows; i++ {
		if err := tbl.Insert(int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	n := db.ScanMorsels(tbl)
	if n <= len(tbl.Segments()) {
		t.Fatalf("ScanMorsels = %d, want sub-segment morsels (> %d segments)", n, len(tbl.Segments()))
	}
	type span struct{ covered, batches int }
	spans := make([]span, n)
	var total int64
	err = db.ForEachBatch(tbl, func(morselIdx int, b ColBatch) error {
		if morselIdx < 0 || morselIdx >= n {
			t.Errorf("morselIdx %d out of range [0,%d)", morselIdx, n)
		}
		if b.Offset()%BatchSize != 0 {
			t.Errorf("batch offset %d not BatchSize-aligned", b.Offset())
		}
		spans[morselIdx].covered += b.Len()
		spans[morselIdx].batches++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, sp := range spans {
		if sp.covered == 0 {
			t.Fatalf("morsel %d received no batches", i)
		}
		if sp.covered > MorselRows {
			t.Fatalf("morsel %d covered %d rows, max %d", i, sp.covered, MorselRows)
		}
		total += int64(sp.covered)
	}
	if total != tbl.Count() {
		t.Fatalf("batches covered %d rows, table has %d", total, tbl.Count())
	}
}

// TestSortStableMatchesSliceStable proves the chunked parallel sort is
// bit-identical to sort.SliceStable — including tie order — at any
// worker count, and that the dispatch counters tick accordingly.
func TestSortStableMatchesSliceStable(t *testing.T) {
	db := Open(2)
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{0, 1, 2, ParallelRowThreshold - 1, 3*ParallelRowThreshold + 77} {
		keys := make([]int, n)
		for i := range keys {
			keys[i] = rng.Intn(17) // heavy ties: stability is observable
		}
		less := func(a, b int) bool { return keys[a] < keys[b] }
		want := make([]int, n)
		for i := range want {
			want[i] = i
		}
		sort.SliceStable(want, func(a, b int) bool { return less(want[a], want[b]) })
		for _, procs := range []int{1, 4} {
			withGOMAXPROCS(t, procs)
			seq0 := db.sortSeq.Value()
			par0 := db.sortPar.Value()
			got := db.SortStable(n, less)
			if len(got) != n {
				t.Fatalf("n=%d procs=%d: perm has %d entries", n, procs, len(got))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("n=%d procs=%d: perm[%d] = %d, want %d", n, procs, i, got[i], want[i])
				}
			}
			wantPar := procs > 1 && n >= 2*ParallelRowThreshold
			if gotPar := db.sortPar.Value() > par0; gotPar != wantPar {
				t.Fatalf("n=%d procs=%d: parallel dispatch = %v, want %v", n, procs, gotPar, wantPar)
			}
			if gotSeq := db.sortSeq.Value() > seq0; gotSeq == wantPar {
				t.Fatalf("n=%d procs=%d: sequential dispatch = %v, want %v", n, procs, gotSeq, !wantPar)
			}
		}
	}
}

// TestSortStableConcurrentComparator hammers SortStable with a
// comparator over shared read-only data at GOMAXPROCS=4; under -race
// this proves the chunk sorts and pairwise merges never run the
// comparator on overlapping index ranges unsynchronized.
func TestSortStableConcurrentComparator(t *testing.T) {
	withGOMAXPROCS(t, 4)
	db := Open(2)
	n := 4 * ParallelRowThreshold
	keys := make([]float64, n)
	rng := rand.New(rand.NewSource(23))
	for i := range keys {
		keys[i] = float64(rng.Intn(97)) / 3
	}
	perm := db.SortStable(n, func(a, b int) bool { return keys[a] < keys[b] })
	for i := 1; i < n; i++ {
		ka, kb := keys[perm[i-1]], keys[perm[i]]
		if ka > kb {
			t.Fatalf("perm not sorted at %d: %v > %v", i, ka, kb)
		}
		if ka == kb && perm[i-1] > perm[i] {
			t.Fatalf("tie order violated at %d: %d before %d", i, perm[i-1], perm[i])
		}
	}
}
