package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Aggregate is the engine's user-defined aggregate contract, identical to
// the three-function pattern the paper describes in §3.1.1:
//
//  1. Transition folds one row into a transition state.
//  2. Merge combines two transition states (needed for parallel execution).
//  3. Final transforms a transition state into the output value.
//
// Init produces the identity state handed to the first Transition call on
// each segment. Transition may mutate and return its input state (the fast
// path) or return a fresh one. An aggregate is correct under parallelism
// iff Transition is insensitive to row order and Merge is associative and
// commutative with Init as identity — properties the engine's tests check.
type Aggregate interface {
	Init() any
	Transition(state any, row Row) any
	Merge(a, b any) any
	Final(state any) (any, error)
}

// FuncAggregate adapts three closures (plus Init) into an Aggregate,
// the lightweight way method packages declare UDAs.
type FuncAggregate struct {
	InitFn       func() any
	TransitionFn func(state any, row Row) any
	MergeFn      func(a, b any) any
	FinalFn      func(state any) (any, error)
}

// Init implements Aggregate.
func (f FuncAggregate) Init() any { return f.InitFn() }

// Transition implements Aggregate.
func (f FuncAggregate) Transition(state any, row Row) any { return f.TransitionFn(state, row) }

// Merge implements Aggregate.
func (f FuncAggregate) Merge(a, b any) any { return f.MergeFn(a, b) }

// Final implements Aggregate.
func (f FuncAggregate) Final(state any) (any, error) { return f.FinalFn(state) }

// ParallelRowThreshold is the minimum total row count for which the
// segment drivers spin up a worker pool. Below it the per-query
// goroutine spawn and synchronization cost more than the scan itself
// (a few microseconds on small tables), so execution stays on the
// calling goroutine. Exported so callers (and docs) can reason about
// the lane the engine will pick.
const ParallelRowThreshold = 4096

// MorselRows is the number of rows in one scheduling morsel: the unit of
// work a scan worker claims from the shared cursor. A multiple of
// BatchSize so sub-segment morsels slice into exactly the same ColBatch
// windows as a whole-segment scan would, and small enough that a table
// with fewer segments than cores still fans out across the pool.
const MorselRows = 4 * BatchSize

// morsel is one contiguous run of rows of one segment, the scheduling
// unit of the scan drivers. The decomposition of a table into morsels is
// a function of the table's shape only — never of the worker count — so
// every execution mode (sequential, pooled, any GOMAXPROCS) folds rows
// into the same per-morsel states and merges them in the same order,
// keeping results bit-identical across modes.
type morsel struct {
	seg    *Segment
	segIdx int
	off    int
	n      int
}

// tableMorsels decomposes t into morsels in (segment, offset) order.
// Segments at or below MorselRows stay whole (one morsel per segment,
// including empty segments, so merge trees on small tables are exactly
// the per-segment trees of earlier versions); larger segments split at
// MorselRows boundaries, which are BatchSize-aligned by construction.
func tableMorsels(t *Table) []morsel {
	defer latchRead(t)()
	return tableMorselsLatched(t)
}

// tableMorselsLatched is tableMorsels for callers already holding t's
// data latch (the in-place updaters hold it exclusively).
func tableMorselsLatched(t *Table) []morsel {
	ms := make([]morsel, 0, len(t.segs))
	for i, seg := range t.segs {
		if seg.n <= MorselRows {
			ms = append(ms, morsel{seg: seg, segIdx: i, off: 0, n: seg.n})
			continue
		}
		for off := 0; off < seg.n; off += MorselRows {
			n := seg.n - off
			if n > MorselRows {
				n = MorselRows
			}
			ms = append(ms, morsel{seg: seg, segIdx: i, off: off, n: n})
		}
	}
	return ms
}

// ScanMorsels reports the number of morsels a scan of t would schedule
// right now. EXPLAIN renders this next to the worker count.
func (db *DB) ScanMorsels(t *Table) int {
	defer latchRead(t)()
	n := 0
	for _, seg := range t.segs {
		if seg.n <= MorselRows {
			n++
			continue
		}
		n += (seg.n + MorselRows - 1) / MorselRows
	}
	return n
}

// morselWorkers returns the number of workers a scan of t should use:
// capped by GOMAXPROCS and the morsel count, collapsing to 1 —
// sequential execution on the calling goroutine — for small tables.
func (db *DB) morselWorkers(t *Table, nMorsels int) int {
	w := runtime.GOMAXPROCS(0)
	if nMorsels < w {
		w = nMorsels
	}
	if w <= 1 {
		return 1
	}
	if t.Count() < ParallelRowThreshold {
		return 1
	}
	return w
}

// runMorsels runs fn once per morsel of ms and collects the first error
// (in morsel order). Each invocation owns its morsel's row range
// exclusively for the call.
//
// Execution is morsel-driven: a pool of up to GOMAXPROCS workers pulls
// morsel indices from a shared cursor until the table is drained, so a
// table with fewer segments than cores still saturates the pool and no
// worker waits behind a slow sibling. Results stay deterministic (and
// bit-identical across worker counts) because per-morsel state is
// indexed by morsel, rows within a morsel fold in row order on one
// worker, and every caller merges the per-morsel states left-to-right
// in (segment, offset) order afterwards. Tables below
// ParallelRowThreshold run inline on the calling goroutine.
// Cancellation is checked at morsel boundaries: the sequential loop
// before each morsel, the pool before each claim. A cancelled scan
// therefore stops within one morsel (at most MorselRows rows per worker)
// and returns ctx.Err().
func (db *DB) runMorsels(ctx context.Context, t *Table, ms []morsel, fn func(i int, m morsel) error) error {
	defer latchRead(t)()
	return db.runMorselsLatched(ctx, t, ms, fn)
}

// runMorselsLatched is runMorsels for callers that already hold t's data
// latch (the in-place updaters hold it exclusively; the join probe holds
// a shared latch spanning both inputs).
func (db *DB) runMorselsLatched(ctx context.Context, t *Table, ms []morsel, fn func(i int, m morsel) error) error {
	db.morsels.Add(int64(len(ms)))
	workers := db.morselWorkers(t, len(ms))
	if workers <= 1 {
		db.seqScans.Inc()
		for i, m := range ms {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i, m); err != nil {
				return err
			}
		}
		return nil
	}
	db.parScans.Inc()
	var cursor atomic.Int64
	var wg sync.WaitGroup
	errs := make([]error, len(ms))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(cursor.Add(1)) - 1
				if i >= len(ms) {
					return
				}
				errs[i] = fn(i, ms[i])
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}

// RunTasks runs fn once per task index in [0, n) on the scan worker
// pool and collects the first error in task order. It is the scheduling
// primitive for callers that build their own work decomposition over
// t.Morsels() — each task typically chains through a private subset of
// the table's morsels (a model replica in IGD training). The pool is
// sized like a scan of t: capped by GOMAXPROCS and n, collapsing to an
// inline sequential loop for tables below ParallelRowThreshold. One
// RunTasks call counts as one engine query; callers report the rows
// they gather via AddRowsScanned.
func (db *DB) RunTasks(t *Table, n int, fn func(task int) error) error {
	db.queries.Add(1)
	defer latchRead(t)()
	workers := db.morselWorkers(t, n)
	if workers <= 1 {
		db.seqScans.Inc()
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	db.parScans.Inc()
	var cursor atomic.Int64
	var wg sync.WaitGroup
	errs := make([]error, n)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// AddRowsScanned reports rows read outside the built-in scan drivers
// (RunTasks-based training epochs) so engine_rows_scanned stays an
// accurate account of transition work.
func (db *DB) AddRowsScanned(n int64) { db.rowsScanned.Add(n) }

// segmentWorkers returns the number of workers for drivers that must
// keep whole segments on one worker (ForEachSegment, SelectInto, join
// materialization — anything appending to per-segment output storage):
// capped by GOMAXPROCS and the segment count, collapsing to 1 for small
// tables.
func (db *DB) segmentWorkers(t *Table) int {
	w := runtime.GOMAXPROCS(0)
	if len(t.segs) < w {
		w = len(t.segs)
	}
	if w <= 1 {
		return 1
	}
	if t.Count() < ParallelRowThreshold {
		return 1
	}
	return w
}

// parallelSegments runs fn once per segment and collects the first error
// (in segment order). Each invocation owns its segment exclusively for
// the call. It is the segment-granular sibling of runMorsels, kept for
// drivers whose output is appended per segment and therefore cannot
// split a segment across workers.
//
// ScanWorkers reports the number of morsel workers a scan of t would
// use right now (1 means the sequential fallback). EXPLAIN renders this
// so the parallel-vs-sequential decision is visible before execution.
func (db *DB) ScanWorkers(t *Table) int { return db.morselWorkers(t, db.ScanMorsels(t)) }

func (db *DB) parallelSegments(ctx context.Context, t *Table, fn func(segIdx int, seg *Segment) error) error {
	defer latchRead(t)()
	return db.parallelSegmentsLatched(ctx, t, fn)
}

// parallelSegmentsLatched is parallelSegments for callers that already
// hold the data latch on t (and on any other table fn reads).
func (db *DB) parallelSegmentsLatched(ctx context.Context, t *Table, fn func(segIdx int, seg *Segment) error) error {
	workers := db.segmentWorkers(t)
	if workers <= 1 {
		db.seqScans.Inc()
		for i, seg := range t.segs {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i, seg); err != nil {
				return err
			}
		}
		return nil
	}
	db.parScans.Inc()
	return db.pooledSegments(ctx, t, workers, fn)
}

// pooledSegments is the worker-pool mode of parallelSegments.
func (db *DB) pooledSegments(ctx context.Context, t *Table, workers int, fn func(segIdx int, seg *Segment) error) error {
	var cursor atomic.Int64
	var wg sync.WaitGroup
	errs := make([]error, len(t.segs))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(cursor.Add(1)) - 1
				if i >= len(t.segs) {
					return
				}
				errs[i] = fn(i, t.segs[i])
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}

// Run executes a user-defined aggregate over the whole table:
// SELECT agg(...) FROM t. Transition runs morsel-parallel; the per-morsel
// states are merged left-to-right and the merged state finalized.
func (db *DB) Run(t *Table, agg Aggregate) (any, error) {
	return db.RunCtx(context.Background(), t, agg)
}

// RunCtx is Run with cancellation: ctx is checked at morsel boundaries,
// and a cancelled scan returns ctx.Err() without finalizing.
func (db *DB) RunCtx(ctx context.Context, t *Table, agg Aggregate) (any, error) {
	db.queries.Add(1)
	ms := tableMorsels(t)
	states := make([]any, len(ms))
	err := db.runMorsels(ctx, t, ms, func(i int, m morsel) error {
		state := agg.Init()
		end := m.off + m.n
		for r := m.off; r < end; r++ {
			state = agg.Transition(state, Row{seg: m.seg, idx: r})
		}
		states[i] = state
		db.rowsScanned.Add(int64(m.n))
		return nil
	})
	if err != nil {
		return nil, err
	}
	merged := states[0]
	for _, s := range states[1:] {
		merged = agg.Merge(merged, s)
	}
	return agg.Final(merged)
}

// RunFiltered is Run restricted to rows satisfying pred
// (SELECT agg(...) FROM t WHERE pred).
func (db *DB) RunFiltered(t *Table, pred func(Row) bool, agg Aggregate) (any, error) {
	return db.RunFilteredCtx(context.Background(), t, pred, agg)
}

// RunFilteredCtx is RunFiltered with cancellation at morsel boundaries.
func (db *DB) RunFilteredCtx(ctx context.Context, t *Table, pred func(Row) bool, agg Aggregate) (any, error) {
	db.queries.Add(1)
	ms := tableMorsels(t)
	states := make([]any, len(ms))
	err := db.runMorsels(ctx, t, ms, func(i int, m morsel) error {
		state := agg.Init()
		end := m.off + m.n
		for r := m.off; r < end; r++ {
			row := Row{seg: m.seg, idx: r}
			if pred(row) {
				state = agg.Transition(state, row)
			}
		}
		states[i] = state
		db.rowsScanned.Add(int64(m.n))
		return nil
	})
	if err != nil {
		return nil, err
	}
	merged := states[0]
	for _, s := range states[1:] {
		merged = agg.Merge(merged, s)
	}
	return agg.Final(merged)
}

// GroupResult is one group's aggregate output.
type GroupResult struct {
	Key   string
	Value any
}

// GroupKey is a compact composite grouping key: a comparable struct, so a
// hash aggregate can key its map without rendering the row's group columns
// into a formatted string (which costs an allocation per row). Single-key
// grouping uses exactly one field — an Int column goes in Int, a String
// column in Str — and multi-column keys encode into Str. Callers only need
// the key to be injective; any per-group metadata (e.g. the original key
// values) rides along in the aggregate state.
type GroupKey struct {
	Int int64
	Str string
}

// RunGroupBy executes SELECT key, agg(...) FROM t GROUP BY key. The key
// function projects each row to a group key. Partial per-key states are
// built segment-parallel and merged across segments, mirroring a parallel
// hash aggregate.
func (db *DB) RunGroupBy(t *Table, key func(Row) string, agg Aggregate) (map[string]any, error) {
	return db.RunGroupByFiltered(t, nil, key, agg)
}

// RunGroupByKeyCtx is RunGroupByKey with cancellation at morsel
// boundaries.
func (db *DB) RunGroupByKeyCtx(ctx context.Context, t *Table, pred func(Row) bool, key func(Row) GroupKey, agg Aggregate) (map[GroupKey]any, error) {
	return runGroupBy(ctx, db, t, pred, key, agg)
}

// RunGroupByFiltered is RunGroupBy restricted to rows satisfying pred
// (SELECT key, agg(...) FROM t WHERE pred GROUP BY key). A nil pred keeps
// every row. Filtering happens before grouping, so groups whose rows are
// all rejected do not appear in the output — the SQL front-end relies on
// this for WHERE + GROUP BY queries.
func (db *DB) RunGroupByFiltered(t *Table, pred func(Row) bool, key func(Row) string, agg Aggregate) (map[string]any, error) {
	return runGroupBy(context.Background(), db, t, pred, key, agg)
}

// RunGroupByKey is RunGroupByFiltered with a GroupKey-valued key function:
// the allocation-free grouping path for hot aggregates. An int64 group
// column keys as GroupKey{Int: v}, a string column as GroupKey{Str: s};
// composite keys pack into Str.
func (db *DB) RunGroupByKey(t *Table, pred func(Row) bool, key func(Row) GroupKey, agg Aggregate) (map[GroupKey]any, error) {
	return runGroupBy(context.Background(), db, t, pred, key, agg)
}

// runGroupBy is the shared parallel hash-aggregate skeleton under both
// RunGroupByFiltered (string keys) and RunGroupByKey (struct keys).
func runGroupBy[K comparable](ctx context.Context, db *DB, t *Table, pred func(Row) bool, key func(Row) K, agg Aggregate) (map[K]any, error) {
	db.queries.Add(1)
	ms := tableMorsels(t)
	partials := make([]map[K]any, len(ms))
	err := db.runMorsels(ctx, t, ms, func(i int, m morsel) error {
		local := make(map[K]any)
		end := m.off + m.n
		for r := m.off; r < end; r++ {
			row := Row{seg: m.seg, idx: r}
			if pred != nil && !pred(row) {
				continue
			}
			k := key(row)
			state, ok := local[k]
			if !ok {
				state = agg.Init()
			}
			local[k] = agg.Transition(state, row)
		}
		partials[i] = local
		db.rowsScanned.Add(int64(m.n))
		return nil
	})
	if err != nil {
		return nil, err
	}
	merged := partials[0]
	for _, local := range partials[1:] {
		for k, s := range local {
			if existing, ok := merged[k]; ok {
				merged[k] = agg.Merge(existing, s)
			} else {
				merged[k] = s
			}
		}
	}
	out := make(map[K]any, len(merged))
	for k, s := range merged {
		v, err := agg.Final(s)
		if err != nil {
			return nil, fmt.Errorf("group %v: %w", k, err)
		}
		out[k] = v
	}
	return out, nil
}

// ForEachSegment runs fn sequentially within each segment but parallel
// across segments. fn receives every row of its segment in order and may
// keep segment-local state without locking.
func (db *DB) ForEachSegment(t *Table, fn func(segIdx int, row Row) error) error {
	return db.ForEachSegmentCtx(context.Background(), t, fn)
}

// ForEachSegmentCtx is ForEachSegment with cancellation at segment
// boundaries.
func (db *DB) ForEachSegmentCtx(ctx context.Context, t *Table, fn func(segIdx int, row Row) error) error {
	db.queries.Add(1)
	return db.parallelSegments(ctx, t, func(i int, seg *Segment) error {
		for r := 0; r < seg.n; r++ {
			if err := fn(i, Row{seg: seg, idx: r}); err != nil {
				return err
			}
		}
		db.rowsScanned.Add(int64(seg.n))
		return nil
	})
}

// Rows returns all rows of the table materialized as []any slices in
// segment order. Intended for small results (model tables, test probes) —
// bulk data should stay inside the engine, as §3.1.2 insists.
func (db *DB) Rows(t *Table) [][]any {
	db.queries.Add(1)
	defer latchRead(t)()
	var out [][]any
	for _, seg := range t.segs {
		for r := 0; r < seg.n; r++ {
			row := make([]any, len(t.schema))
			for c, col := range t.schema {
				switch col.Kind {
				case Float:
					row[c] = seg.cols[c].floats[r]
				case Vector:
					row[c] = seg.cols[c].vecs[r]
				case Int:
					row[c] = seg.cols[c].ints[r]
				case String:
					row[c] = seg.cols[c].strs[r]
				case Bool:
					row[c] = seg.cols[c].bools[r]
				}
			}
			out = append(out, row)
		}
	}
	return out
}

// SelectInto creates a new table from the rows of t that satisfy pred,
// carrying over the projected columns — CREATE TABLE dst AS SELECT cols
// FROM t WHERE pred. A nil pred keeps every row; nil cols keeps every
// column. The projection preserves each row's segment, so no data moves
// between segments (a local scan, as in Greenplum).
func (db *DB) SelectInto(dst string, t *Table, pred func(Row) bool, cols []string) (*Table, error) {
	return db.selectInto(context.Background(), dst, t, pred, cols, t.temp)
}

// SelectIntoTemp is SelectInto into a uniquely named temporary table
// (prefix_tmp_N), the staging pattern driver functions use (§3.1.2).
func (db *DB) SelectIntoTemp(prefix string, t *Table, pred func(Row) bool, cols []string) (*Table, error) {
	return db.selectInto(context.Background(), db.nextTempName(prefix), t, pred, cols, true)
}

// SelectIntoTempCtx is SelectIntoTemp with cancellation at segment
// boundaries.
func (db *DB) SelectIntoTempCtx(ctx context.Context, prefix string, t *Table, pred func(Row) bool, cols []string) (*Table, error) {
	return db.selectInto(ctx, db.nextTempName(prefix), t, pred, cols, true)
}

func (db *DB) selectInto(ctx context.Context, dst string, t *Table, pred func(Row) bool, cols []string, temp bool) (*Table, error) {
	db.queries.Add(1)
	var idxs []int
	if cols == nil {
		idxs = make([]int, len(t.schema))
		for i := range idxs {
			idxs[i] = i
		}
	} else {
		for _, name := range cols {
			i := t.schema.Index(name)
			if i < 0 {
				return nil, fmt.Errorf("%w: %q", ErrNoColumn, name)
			}
			idxs = append(idxs, i)
		}
	}
	schema := make(Schema, len(idxs))
	for i, src := range idxs {
		schema[i] = t.schema[src]
	}
	out, err := db.createTable(dst, schema, temp)
	if err != nil {
		return nil, err
	}
	var total int64
	var mu sync.Mutex
	err = db.parallelSegments(ctx, t, func(i int, seg *Segment) error {
		dseg := out.segs[i]
		var kept int64
		for r := 0; r < seg.n; r++ {
			row := Row{seg: seg, idx: r}
			if pred != nil && !pred(row) {
				continue
			}
			for di, src := range idxs {
				switch t.schema[src].Kind {
				case Float:
					dseg.cols[di].floats = append(dseg.cols[di].floats, seg.cols[src].floats[r])
				case Vector:
					dseg.cols[di].vecs = append(dseg.cols[di].vecs, seg.cols[src].vecs[r])
				case Int:
					dseg.cols[di].ints = append(dseg.cols[di].ints, seg.cols[src].ints[r])
				case String:
					dseg.cols[di].strs = append(dseg.cols[di].strs, seg.cols[src].strs[r])
				case Bool:
					dseg.cols[di].bools = append(dseg.cols[di].bools, seg.cols[src].bools[r])
				}
			}
			dseg.n++
			kept++
		}
		db.rowsScanned.Add(int64(seg.n))
		mu.Lock()
		total += kept
		mu.Unlock()
		return nil
	})
	if err != nil {
		_ = db.DropTable(dst) // don't leak a half-built staging table
		return nil, err
	}
	out.mu.Lock()
	out.totalRows = total
	out.mu.Unlock()
	return out, nil
}

// UpdateInt rewrites an Int column in place: UPDATE t SET col = fn(row).
// The paper's k-means variant uses exactly this to store each point's
// current centroid id (§4.3). Updates run segment-parallel.
func (db *DB) UpdateInt(t *Table, col string, fn func(Row) int64) error {
	ci := t.schema.Index(col)
	if ci < 0 {
		return fmt.Errorf("%w: %q", ErrNoColumn, col)
	}
	if t.schema[ci].Kind != Int {
		return fmt.Errorf("%w: %q is %s", ErrType, col, t.schema[ci].Kind)
	}
	db.queries.Add(1)
	t.dataMu.Lock()
	defer t.dataMu.Unlock()
	err := db.runMorselsLatched(context.Background(), t, tableMorselsLatched(t), func(i int, m morsel) error {
		end := m.off + m.n
		for r := m.off; r < end; r++ {
			m.seg.cols[ci].ints[r] = fn(Row{seg: m.seg, idx: r})
		}
		db.rowsScanned.Add(int64(m.n))
		return nil
	})
	t.version.Add(1) // after the rewrite completes; see Insert
	return err
}

// UpdateFloat rewrites a Float column in place.
func (db *DB) UpdateFloat(t *Table, col string, fn func(Row) float64) error {
	ci := t.schema.Index(col)
	if ci < 0 {
		return fmt.Errorf("%w: %q", ErrNoColumn, col)
	}
	if t.schema[ci].Kind != Float {
		return fmt.Errorf("%w: %q is %s", ErrType, col, t.schema[ci].Kind)
	}
	db.queries.Add(1)
	t.dataMu.Lock()
	defer t.dataMu.Unlock()
	err := db.runMorselsLatched(context.Background(), t, tableMorselsLatched(t), func(i int, m morsel) error {
		end := m.off + m.n
		for r := m.off; r < end; r++ {
			m.seg.cols[ci].floats[r] = fn(Row{seg: m.seg, idx: r})
		}
		db.rowsScanned.Add(int64(m.n))
		return nil
	})
	t.version.Add(1) // after the rewrite completes; see Insert
	return err
}

// CountWhere returns the number of rows satisfying pred.
func (db *DB) CountWhere(t *Table, pred func(Row) bool) (int64, error) {
	v, err := db.RunFiltered(t, pred, FuncAggregate{
		InitFn:       func() any { return int64(0) },
		TransitionFn: func(s any, _ Row) any { return s.(int64) + 1 },
		MergeFn:      func(a, b any) any { return a.(int64) + b.(int64) },
		FinalFn:      func(s any) (any, error) { return s, nil },
	})
	if err != nil {
		return 0, err
	}
	return v.(int64), nil
}
