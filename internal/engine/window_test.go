package engine

import (
	"math/rand"
	"testing"
)

func TestRunWindowRunningSum(t *testing.T) {
	db := Open(4)
	tbl, _ := db.CreateTable("t", Schema{
		{Name: "seq", Kind: Int},
		{Name: "x", Kind: Float},
	})
	// Insert in shuffled order; the window must re-order by seq.
	perm := rand.New(rand.NewSource(1)).Perm(20)
	for _, i := range perm {
		if err := tbl.Insert(int64(i), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	out, err := db.RunWindow(tbl,
		WindowSpec{OrderBy: func(a, b Row) bool { return a.Int(0) < b.Int(0) }},
		func() any { return 0.0 },
		func(s any, r Row) (any, any) {
			sum := s.(float64) + r.Float(1)
			return sum, sum
		})
	if err != nil {
		t.Fatal(err)
	}
	vals := out[""]
	if len(vals) != 20 {
		t.Fatalf("window emitted %d values", len(vals))
	}
	// Running sum of 0..k at position k is k(k+1)/2.
	for k, v := range vals {
		want := float64(k*(k+1)) / 2
		if v.(float64) != want {
			t.Fatalf("running sum at %d = %v, want %v", k, v, want)
		}
	}
}

func TestRunWindowPartitions(t *testing.T) {
	db := Open(3)
	tbl, _ := db.CreateTable("t", Schema{
		{Name: "g", Kind: String},
		{Name: "seq", Kind: Int},
		{Name: "x", Kind: Float},
	})
	for i := 0; i < 30; i++ {
		g := "a"
		if i%2 == 1 {
			g = "b"
		}
		if err := tbl.Insert(g, int64(i), 1.0); err != nil {
			t.Fatal(err)
		}
	}
	out, err := db.RunWindow(tbl,
		WindowSpec{
			PartitionBy: func(r Row) string { return r.Str(0) },
			OrderBy:     func(a, b Row) bool { return a.Int(1) < b.Int(1) },
		},
		func() any { return 0.0 },
		func(s any, r Row) (any, any) {
			c := s.(float64) + r.Float(2)
			return c, c
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("partitions = %d", len(out))
	}
	for _, key := range []string{"a", "b"} {
		vals := out[key]
		if len(vals) != 15 {
			t.Fatalf("partition %q has %d rows", key, len(vals))
		}
		// Count restarts per partition: last value is 15.
		if vals[14].(float64) != 15 {
			t.Fatalf("partition %q final count = %v", key, vals[14])
		}
	}
}

// The paper's §3.1.2 use case: carry a Markov-chain state across
// iteration-ordered rows (the Wang et al. in-database MCMC pattern). Here
// a deterministic chain x_{k+1} = x_k/2 + u_k is folded over rows ordered
// by iteration and checked against direct evaluation.
func TestRunWindowMarkovChainState(t *testing.T) {
	db := Open(4)
	tbl, _ := db.CreateTable("iters", Schema{
		{Name: "iteration", Kind: Int},
		{Name: "u", Kind: Float},
	})
	us := []float64{1, -2, 0.5, 3, -1, 0.25, 2, -0.5}
	for i, u := range us {
		if err := tbl.Insert(int64(i), u); err != nil {
			t.Fatal(err)
		}
	}
	out, err := db.RunWindow(tbl,
		WindowSpec{OrderBy: func(a, b Row) bool { return a.Int(0) < b.Int(0) }},
		func() any { return 0.0 },
		func(s any, r Row) (any, any) {
			x := s.(float64)/2 + r.Float(1)
			return x, x
		})
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for i, u := range us {
		want = want/2 + u
		if got := out[""][i].(float64); got != want {
			t.Fatalf("chain state at %d = %v, want %v", i, got, want)
		}
	}
}

func TestRunWindowRequiresOrder(t *testing.T) {
	db := Open(1)
	tbl, _ := db.CreateTable("t", Schema{{Name: "x", Kind: Float}})
	if _, err := db.RunWindow(tbl, WindowSpec{}, func() any { return nil },
		func(s any, r Row) (any, any) { return s, nil }); err == nil {
		t.Fatal("missing OrderBy should fail")
	}
}

func TestRunWindowEmptyTable(t *testing.T) {
	db := Open(2)
	tbl, _ := db.CreateTable("t", Schema{{Name: "x", Kind: Float}})
	out, err := db.RunWindow(tbl,
		WindowSpec{OrderBy: func(a, b Row) bool { return a.Float(0) < b.Float(0) }},
		func() any { return nil },
		func(s any, r Row) (any, any) { return s, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("empty table produced %v", out)
	}
}
