package engine

import (
	"context"
	"time"
)

// QueryStats reports the timing of one instrumented aggregate query.
//
// On a machine with fewer physical cores than configured segments, WallTime
// stops improving once cores are saturated, while MaxSegmentTime — the
// critical path of a true shared-nothing cluster, where every segment is
// its own processor — keeps shrinking as rows per segment fall. The
// Figure 4/5 harness reports both and EXPERIMENTS.md explains the
// substitution.
type QueryStats struct {
	// WallTime is the elapsed time of the whole query.
	WallTime time.Duration
	// MaxSegmentTime is the busy time of the slowest segment (the
	// cluster-critical-path metric).
	MaxSegmentTime time.Duration
	// TotalSegmentTime is the summed busy time of all segments (the
	// cluster's aggregate work).
	TotalSegmentTime time.Duration
	// Rows is the number of rows fed through transition functions.
	Rows int64
}

// RunInstrumented is Run with per-segment timing. Results are identical to
// Run; only the bookkeeping differs.
func (db *DB) RunInstrumented(t *Table, agg Aggregate) (any, QueryStats, error) {
	db.queries.Add(1)
	start := time.Now()
	states := make([]any, len(t.segs))
	segTimes := make([]time.Duration, len(t.segs))
	err := db.parallelSegments(context.Background(), t, func(i int, seg *Segment) error {
		segStart := time.Now()
		state := agg.Init()
		for r := 0; r < seg.n; r++ {
			state = agg.Transition(state, Row{seg: seg, idx: r})
		}
		states[i] = state
		segTimes[i] = time.Since(segStart)
		db.rowsScanned.Add(int64(seg.n))
		return nil
	})
	var qs QueryStats
	if err != nil {
		return nil, qs, err
	}
	merged := states[0]
	for _, s := range states[1:] {
		merged = agg.Merge(merged, s)
	}
	v, err := agg.Final(merged)
	qs.WallTime = time.Since(start)
	var rows int64
	for _, seg := range t.segs {
		rows += int64(seg.n)
	}
	qs.Rows = rows
	for _, d := range segTimes {
		qs.TotalSegmentTime += d
		if d > qs.MaxSegmentTime {
			qs.MaxSegmentTime = d
		}
	}
	return v, qs, err
}

// SimulatedBreakdown reports per-segment busy times plus the coordinator
// tail (merge + final) of one RunSimulatedDetailed execution.
type SimulatedBreakdown struct {
	// SegmentTimes[i] is segment i's transition-loop duration.
	SegmentTimes []time.Duration
	// Tail is the merge + final duration.
	Tail time.Duration
}

// RunSimulatedDetailed is RunSimulated returning the full per-segment
// breakdown, so harnesses can de-noise each segment independently (taking
// per-segment minima across trials) before forming the critical path.
func (db *DB) RunSimulatedDetailed(t *Table, agg Aggregate) (any, SimulatedBreakdown, error) {
	db.queries.Add(1)
	bd := SimulatedBreakdown{SegmentTimes: make([]time.Duration, len(t.segs))}
	states := make([]any, len(t.segs))
	for i, seg := range t.segs {
		segStart := time.Now()
		state := agg.Init()
		for r := 0; r < seg.n; r++ {
			state = agg.Transition(state, Row{seg: seg, idx: r})
		}
		states[i] = state
		bd.SegmentTimes[i] = time.Since(segStart)
		db.rowsScanned.Add(int64(seg.n))
	}
	mergeStart := time.Now()
	merged := states[0]
	for _, s := range states[1:] {
		merged = agg.Merge(merged, s)
	}
	v, err := agg.Final(merged)
	bd.Tail = time.Since(mergeStart)
	return v, bd, err
}

// RunSimulated executes the aggregate processing segments one at a time,
// timing each in isolation, and reports MaxSegmentTime as the simulated
// cluster time: on a real shared-nothing cluster every segment has its own
// processor, so query latency is the slowest segment's time plus the
// (tiny) merge/final tail. Use this when the host machine has fewer cores
// than the configured segment count and wall-time speedup would saturate.
func (db *DB) RunSimulated(t *Table, agg Aggregate) (any, QueryStats, error) {
	db.queries.Add(1)
	start := time.Now()
	var qs QueryStats
	states := make([]any, len(t.segs))
	for i, seg := range t.segs {
		segStart := time.Now()
		state := agg.Init()
		for r := 0; r < seg.n; r++ {
			state = agg.Transition(state, Row{seg: seg, idx: r})
		}
		states[i] = state
		d := time.Since(segStart)
		qs.TotalSegmentTime += d
		if d > qs.MaxSegmentTime {
			qs.MaxSegmentTime = d
		}
		qs.Rows += int64(seg.n)
		db.rowsScanned.Add(int64(seg.n))
	}
	mergeStart := time.Now()
	merged := states[0]
	for _, s := range states[1:] {
		merged = agg.Merge(merged, s)
	}
	v, err := agg.Final(merged)
	// Merge and final run on the coordinator after the slowest segment in
	// a real cluster, so they are added to the critical path.
	qs.MaxSegmentTime += time.Since(mergeStart)
	qs.WallTime = time.Since(start)
	return v, qs, err
}
