package lda

import (
	"errors"
	"math/rand"
	"testing"

	"madlib/internal/engine"
)

// twoTopicCorpus builds documents drawn from two disjoint vocabularies:
// words 0-9 (topic A) and 10-19 (topic B). Each document is pure.
func twoTopicCorpus(seed int64, nDocs, docLen int) ([][]int, []int) {
	rng := rand.New(rand.NewSource(seed))
	docs := make([][]int, nDocs)
	truth := make([]int, nDocs)
	for d := range docs {
		topic := d % 2
		truth[d] = topic
		doc := make([]int, docLen)
		for i := range doc {
			doc[i] = topic*10 + rng.Intn(10)
		}
		docs[d] = doc
	}
	return docs, truth
}

func TestRecoverTwoTopics(t *testing.T) {
	docs, truth := twoTopicCorpus(1, 60, 50)
	m, err := Train(docs, Options{Topics: 2, Iterations: 150, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Each learned topic should concentrate on one vocabulary half.
	// Identify which learned topic corresponds to true topic 0.
	dist0 := m.TopicDistribution(0)
	var lowMass0 float64
	for w := 0; w < 10; w++ {
		lowMass0 += dist0[w]
	}
	topicForTrue0 := 0
	if lowMass0 < 0.5 {
		topicForTrue0 = 1
	}
	// Documents must be assigned dominantly to the matching topic.
	correct := 0
	for d := range docs {
		mix := m.DocDistribution(d)
		var got int
		if mix[1] > mix[0] {
			got = 1
		}
		want := topicForTrue0
		if truth[d] == 1 {
			want = 1 - topicForTrue0
		}
		if got == want {
			correct++
		}
	}
	if correct < 55 {
		t.Fatalf("only %d/60 documents recovered", correct)
	}
	// Topic purity: each topic's mass concentrated on its half.
	for k := 0; k < 2; k++ {
		dist := m.TopicDistribution(k)
		var low float64
		for w := 0; w < 10; w++ {
			low += dist[w]
		}
		if low > 0.1 && low < 0.9 {
			t.Fatalf("topic %d not separated: low-half mass %v", k, low)
		}
	}
}

func TestLogLikelihoodImproves(t *testing.T) {
	docs, _ := twoTopicCorpus(2, 40, 40)
	m, err := Train(docs, Options{Topics: 2, Iterations: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	h := m.LogLikelihoodHistory
	if len(h) < 2 {
		t.Fatalf("history too short: %v", h)
	}
	if h[len(h)-1] <= h[0] {
		t.Fatalf("log-likelihood did not improve: %v → %v", h[0], h[len(h)-1])
	}
}

func TestDistributionsNormalize(t *testing.T) {
	docs, _ := twoTopicCorpus(3, 10, 30)
	m, err := Train(docs, Options{Topics: 3, Iterations: 30, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 3; k++ {
		var sum float64
		for _, p := range m.TopicDistribution(k) {
			if p < 0 {
				t.Fatal("negative probability")
			}
			sum += p
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("topic %d distribution sums to %v", k, sum)
		}
	}
	for d := 0; d < 10; d++ {
		var sum float64
		for _, p := range m.DocDistribution(d) {
			sum += p
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("doc %d mixture sums to %v", d, sum)
		}
	}
}

func TestTopWords(t *testing.T) {
	docs, _ := twoTopicCorpus(4, 40, 50)
	m, err := Train(docs, Options{Topics: 2, Iterations: 100, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 2; k++ {
		top := m.TopWords(k, 5)
		if len(top) != 5 {
			t.Fatalf("TopWords returned %d", len(top))
		}
		// All top words should come from the same vocabulary half.
		half := top[0] / 10
		for _, w := range top {
			if w/10 != half {
				t.Fatalf("topic %d mixes halves: %v", k, top)
			}
		}
	}
}

func TestCountInvariants(t *testing.T) {
	docs, _ := twoTopicCorpus(5, 20, 25)
	m, err := Train(docs, Options{Topics: 4, Iterations: 20, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Total counts must equal the corpus token count from all views.
	tokens := 0
	for _, d := range docs {
		tokens += len(d)
	}
	var fromTopics int
	for _, c := range m.TopicTotal {
		fromTopics += c
	}
	if fromTopics != tokens {
		t.Fatalf("TopicTotal sums to %d, corpus has %d", fromTopics, tokens)
	}
	var fromDocs int
	for d := range docs {
		for _, c := range m.DocTopic[d] {
			fromDocs += c
		}
	}
	if fromDocs != tokens {
		t.Fatalf("DocTopic sums to %d", fromDocs)
	}
}

func TestTrainTable(t *testing.T) {
	db := engine.Open(3)
	tbl, _ := db.CreateTable("corpus", engine.Schema{
		{Name: "doc", Kind: engine.Int},
		{Name: "word", Kind: engine.Int},
	})
	docs, _ := twoTopicCorpus(6, 20, 30)
	for d, doc := range docs {
		for _, w := range doc {
			if err := tbl.Insert(int64(d), int64(w)); err != nil {
				t.Fatal(err)
			}
		}
	}
	m, err := TrainTable(db, tbl, "doc", "word", Options{Topics: 2, Iterations: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Vocab != 20 {
		t.Fatalf("vocab = %d", m.Vocab)
	}
	if len(m.DocTopic) != 20 {
		t.Fatalf("docs = %d", len(m.DocTopic))
	}
}

func TestErrors(t *testing.T) {
	if _, err := Train(nil, Options{Topics: 2}); !errors.Is(err, ErrNoData) {
		t.Fatalf("want ErrNoData, got %v", err)
	}
	if _, err := Train([][]int{{1}}, Options{Topics: 0}); err == nil {
		t.Fatal("Topics=0 should fail")
	}
	if _, err := Train([][]int{{}}, Options{Topics: 2}); err == nil {
		t.Fatal("empty document should fail")
	}
	if _, err := Train([][]int{{-1}}, Options{Topics: 2}); err == nil {
		t.Fatal("negative word id should fail")
	}
	if _, err := Train([][]int{{5}}, Options{Topics: 2, Vocab: 3}); err == nil {
		t.Fatal("word outside declared vocab should fail")
	}
}

func BenchmarkGibbsSweep(b *testing.B) {
	docs, _ := twoTopicCorpus(7, 100, 50)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(docs, Options{Topics: 4, Iterations: 1, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
