// Package lda implements Latent Dirichlet Allocation with a collapsed
// Gibbs sampler (Table 1). Documents are bags of word ids; the sampler
// maintains document-topic and topic-word count matrices and resamples
// each token's topic from its collapsed conditional. The training corpus
// can be staged out of an engine table with one scan.
package lda

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"madlib/internal/core"
	"madlib/internal/engine"
)

func init() {
	core.RegisterMethod(core.MethodInfo{Name: "lda", Title: "Latent Dirichlet Allocation", Category: core.Unsupervised})
}

// ErrNoData is returned for an empty corpus.
var ErrNoData = errors.New("lda: empty corpus")

// Options configure Train.
type Options struct {
	// Topics is the number of topics K (required).
	Topics int
	// Vocab is the vocabulary size; 0 infers max word id + 1.
	Vocab int
	// Alpha is the document-topic Dirichlet prior (default 50/K).
	Alpha float64
	// Beta is the topic-word Dirichlet prior (default 0.01).
	Beta float64
	// Iterations is the number of Gibbs sweeps (default 200).
	Iterations int
	// Seed drives the sampler.
	Seed int64
}

// Model is a trained LDA model.
type Model struct {
	// Topics is K.
	Topics int
	// Vocab is the vocabulary size.
	Vocab int
	// DocTopic[d][k] counts document d's tokens assigned to topic k.
	DocTopic [][]int
	// TopicWord[k][w] counts word w's assignments to topic k.
	TopicWord [][]int
	// TopicTotal[k] is the total token count of topic k.
	TopicTotal []int
	// Assignments[d][i] is the sampled topic of token i in document d.
	Assignments [][]int
	// LogLikelihoodHistory traces the (unnormalized) corpus log-likelihood
	// over sweeps; it should trend upward.
	LogLikelihoodHistory []float64

	alpha, beta float64
	docs        [][]int
}

// Train runs the collapsed Gibbs sampler over in-memory documents.
func Train(docs [][]int, opts Options) (*Model, error) {
	if opts.Topics < 1 {
		return nil, errors.New("lda: Topics must be at least 1")
	}
	if len(docs) == 0 {
		return nil, ErrNoData
	}
	if opts.Alpha == 0 {
		opts.Alpha = 50 / float64(opts.Topics)
	}
	if opts.Beta == 0 {
		opts.Beta = 0.01
	}
	if opts.Iterations == 0 {
		opts.Iterations = 200
	}
	vocab := opts.Vocab
	tokens := 0
	for d, doc := range docs {
		if len(doc) == 0 {
			return nil, fmt.Errorf("lda: document %d is empty", d)
		}
		tokens += len(doc)
		for _, w := range doc {
			if w < 0 {
				return nil, fmt.Errorf("lda: negative word id %d", w)
			}
			if w >= vocab {
				if opts.Vocab > 0 {
					return nil, fmt.Errorf("lda: word id %d outside vocab %d", w, opts.Vocab)
				}
				vocab = w + 1
			}
		}
	}
	if tokens == 0 {
		return nil, ErrNoData
	}
	k := opts.Topics
	m := &Model{
		Topics: k, Vocab: vocab, alpha: opts.Alpha, beta: opts.Beta, docs: docs,
		DocTopic:   make([][]int, len(docs)),
		TopicWord:  make([][]int, k),
		TopicTotal: make([]int, k),
	}
	for t := range m.TopicWord {
		m.TopicWord[t] = make([]int, vocab)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	m.Assignments = make([][]int, len(docs))
	for d, doc := range docs {
		m.DocTopic[d] = make([]int, k)
		m.Assignments[d] = make([]int, len(doc))
		for i, w := range doc {
			t := rng.Intn(k)
			m.Assignments[d][i] = t
			m.DocTopic[d][t]++
			m.TopicWord[t][w]++
			m.TopicTotal[t]++
		}
	}
	probs := make([]float64, k)
	vb := float64(vocab) * opts.Beta
	for sweep := 0; sweep < opts.Iterations; sweep++ {
		for d, doc := range docs {
			for i, w := range doc {
				old := m.Assignments[d][i]
				m.DocTopic[d][old]--
				m.TopicWord[old][w]--
				m.TopicTotal[old]--
				var sum float64
				for t := 0; t < k; t++ {
					p := (float64(m.DocTopic[d][t]) + opts.Alpha) *
						(float64(m.TopicWord[t][w]) + opts.Beta) /
						(float64(m.TopicTotal[t]) + vb)
					probs[t] = p
					sum += p
				}
				u := rng.Float64() * sum
				t := 0
				for ; t < k-1; t++ {
					u -= probs[t]
					if u <= 0 {
						break
					}
				}
				m.Assignments[d][i] = t
				m.DocTopic[d][t]++
				m.TopicWord[t][w]++
				m.TopicTotal[t]++
			}
		}
		if sweep%10 == 0 || sweep == opts.Iterations-1 {
			m.LogLikelihoodHistory = append(m.LogLikelihoodHistory, m.logLikelihood())
		}
	}
	return m, nil
}

// TrainTable stages a corpus from a table with (doc Int, word Int) rows
// and trains on it.
func TrainTable(db *engine.DB, table *engine.Table, docCol, wordCol string, opts Options) (*Model, error) {
	schema := table.Schema()
	di, wi := schema.Index(docCol), schema.Index(wordCol)
	if di < 0 || wi < 0 {
		return nil, fmt.Errorf("%w: %q or %q", engine.ErrNoColumn, docCol, wordCol)
	}
	if schema[di].Kind != engine.Int || schema[wi].Kind != engine.Int {
		return nil, errors.New("lda: need (Int, Int) columns")
	}
	groups, err := db.RunGroupBy(table, func(r engine.Row) string { return fmt.Sprint(r.Int(di)) },
		engine.FuncAggregate{
			InitFn:       func() any { return []int(nil) },
			TransitionFn: func(s any, r engine.Row) any { return append(s.([]int), int(r.Int(wi))) },
			MergeFn:      func(a, b any) any { return append(a.([]int), b.([]int)...) },
			FinalFn:      func(s any) (any, error) { return s, nil },
		})
	if err != nil {
		return nil, err
	}
	if len(groups) == 0 {
		return nil, ErrNoData
	}
	keys := make([]string, 0, len(groups))
	for g := range groups {
		keys = append(keys, g)
	}
	sort.Strings(keys)
	docs := make([][]int, 0, len(groups))
	for _, g := range keys {
		docs = append(docs, groups[g].([]int))
	}
	return Train(docs, opts)
}

// logLikelihood computes the corpus token log-likelihood under the current
// counts (up to a constant).
func (m *Model) logLikelihood() float64 {
	var ll float64
	vb := float64(m.Vocab) * m.beta
	ka := float64(m.Topics) * m.alpha
	for d, doc := range m.docs {
		docLen := float64(len(doc))
		for _, w := range doc {
			var p float64
			for t := 0; t < m.Topics; t++ {
				theta := (float64(m.DocTopic[d][t]) + m.alpha) / (docLen + ka)
				phi := (float64(m.TopicWord[t][w]) + m.beta) / (float64(m.TopicTotal[t]) + vb)
				p += theta * phi
			}
			ll += math.Log(p)
		}
	}
	return ll
}

// TopicDistribution returns the smoothed word distribution of topic t.
func (m *Model) TopicDistribution(t int) []float64 {
	out := make([]float64, m.Vocab)
	den := float64(m.TopicTotal[t]) + float64(m.Vocab)*m.beta
	for w := 0; w < m.Vocab; w++ {
		out[w] = (float64(m.TopicWord[t][w]) + m.beta) / den
	}
	return out
}

// DocDistribution returns the smoothed topic mixture of document d.
func (m *Model) DocDistribution(d int) []float64 {
	out := make([]float64, m.Topics)
	total := 0
	for _, c := range m.DocTopic[d] {
		total += c
	}
	den := float64(total) + float64(m.Topics)*m.alpha
	for t := 0; t < m.Topics; t++ {
		out[t] = (float64(m.DocTopic[d][t]) + m.alpha) / den
	}
	return out
}

// TopWords returns the n highest-probability word ids of topic t.
func (m *Model) TopWords(t, n int) []int {
	ids := make([]int, m.Vocab)
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool { return m.TopicWord[t][ids[a]] > m.TopicWord[t][ids[b]] })
	if n > len(ids) {
		n = len(ids)
	}
	return ids[:n]
}
