package sgd

import (
	"math"

	"madlib/internal/array"
	"madlib/internal/engine"
	"madlib/internal/igd"
)

// LabeledExample is the (u, y) tuple of the Table-2 regression and
// classification objectives (boxed lane only).
type LabeledExample struct {
	X []float64
	Y float64
}

// ExtractLabeled builds an extractor for tables with (y Float, x Vector)
// columns at the given indexes. The shape is vectorizable: models that
// implement igd.GradLoss train through the batch gather kernels.
func ExtractLabeled(yIdx, xIdx int) Extractor {
	return Extractor{
		features:   igd.VectorFeatures(yIdx, xIdx),
		vectorized: true,
		fn: func(r engine.Row) any {
			return LabeledExample{X: r.Vector(xIdx), Y: r.Float(yIdx)}
		},
	}
}

// ExtractFunc wraps an arbitrary row-to-example closure (structured
// examples such as CRF sentences); models trained through it use the
// boxed row-at-a-time lane.
func ExtractFunc(fn func(engine.Row) any) Extractor {
	return Extractor{fn: fn}
}

// LeastSquares is Table 2's "Least Squares": Σ (xᵀu − y)².
type LeastSquares struct {
	// K is the feature dimension.
	K int
}

// Dim implements Model.
func (m LeastSquares) Dim() int { return m.K }

// LossGrad implements igd.GradLoss.
func (m LeastSquares) LossGrad(w, x []float64, y float64, grad []float64) float64 {
	r := array.Dot(w, x) - y
	array.Axpy(2*r, x, grad)
	return r * r
}

// LossAndGrad implements Model.
func (m LeastSquares) LossAndGrad(w []float64, example any, grad []float64) float64 {
	ex := example.(LabeledExample)
	return m.LossGrad(w, ex.X, ex.Y, grad)
}

// Lasso is Table 2's "Lasso": Σ (xᵀu − y)² + μ‖x‖₁, with the L1 term
// handled by a proximal soft-threshold step.
type Lasso struct {
	K  int
	Mu float64
}

// Dim implements Model.
func (m Lasso) Dim() int { return m.K }

// LossGrad implements igd.GradLoss: the smooth part only; L1 enters via Prox.
func (m Lasso) LossGrad(w, x []float64, y float64, grad []float64) float64 {
	r := array.Dot(w, x) - y
	array.Axpy(2*r, x, grad)
	return r*r + m.Mu*array.Norm1(w)
}

// LossAndGrad implements Model.
func (m Lasso) LossAndGrad(w []float64, example any, grad []float64) float64 {
	ex := example.(LabeledExample)
	return m.LossGrad(w, ex.X, ex.Y, grad)
}

// Prox applies soft thresholding at level alpha·Mu.
func (m Lasso) Prox(w []float64, alpha float64) {
	t := alpha * m.Mu
	for i, v := range w {
		switch {
		case v > t:
			w[i] = v - t
		case v < -t:
			w[i] = v + t
		default:
			w[i] = 0
		}
	}
}

// Logistic is Table 2's "Logistic Regression": Σ log(1 + exp(−y·xᵀu)) with
// y ∈ {−1, +1}.
type Logistic struct {
	K int
}

// Dim implements Model.
func (m Logistic) Dim() int { return m.K }

// LossGrad implements igd.GradLoss.
func (m Logistic) LossGrad(w, x []float64, y float64, grad []float64) float64 {
	z := y * array.Dot(w, x)
	// d/dw log(1+e^{-z}) = -y x σ(-z)
	s := 1 / (1 + math.Exp(z))
	array.Axpy(-y*s, x, grad)
	if z > 0 {
		return math.Log1p(math.Exp(-z))
	}
	return -z + math.Log1p(math.Exp(z))
}

// LossAndGrad implements Model.
func (m Logistic) LossAndGrad(w []float64, example any, grad []float64) float64 {
	ex := example.(LabeledExample)
	return m.LossGrad(w, ex.X, ex.Y, grad)
}

// HingeSVM is Table 2's "Classification (SVM)": Σ (1 − y·xᵀu)₊.
type HingeSVM struct {
	K int
}

// Dim implements Model.
func (m HingeSVM) Dim() int { return m.K }

// LossGrad implements igd.GradLoss (subgradient at the hinge point).
func (m HingeSVM) LossGrad(w, x []float64, y float64, grad []float64) float64 {
	margin := y * array.Dot(w, x)
	if margin >= 1 {
		return 0
	}
	array.Axpy(-y, x, grad)
	return 1 - margin
}

// LossAndGrad implements Model.
func (m HingeSVM) LossAndGrad(w []float64, example any, grad []float64) float64 {
	ex := example.(LabeledExample)
	return m.LossGrad(w, ex.X, ex.Y, grad)
}

// RatingExample is the (i, j, value) cell of the recommendation objective.
type RatingExample struct {
	I, J  int
	Value float64
}

// ExtractRating builds an extractor for tables with (i Int, j Int, v Float)
// columns at the given indexes. Vectorized training gathers the (i, j)
// pair into the feature scratch and the rating into the label lane.
func ExtractRating(iIdx, jIdx, vIdx int) Extractor {
	return Extractor{
		features:   igd.ColumnFeatures(vIdx, iIdx, jIdx),
		vectorized: true,
		fn: func(r engine.Row) any {
			return RatingExample{I: int(r.Int(iIdx)), J: int(r.Int(jIdx)), Value: r.Float(vIdx)}
		},
	}
}

// LowRank is Table 2's "Recommendation": Σ (LᵢᵀRⱼ − Mᵢⱼ)² + μ‖L,R‖²_F. The
// weight vector packs L (Rows×Rank) followed by R (Cols×Rank).
type LowRank struct {
	Rows, Cols, Rank int
	Mu               float64
}

// Dim implements Model.
func (m LowRank) Dim() int { return (m.Rows + m.Cols) * m.Rank }

// LossGrad implements igd.GradLoss: x carries the (i, j) cell indexes,
// y the observed rating. Only the touched factor rows receive gradient
// mass, which is what makes SGD effective here.
func (m LowRank) LossGrad(w, x []float64, y float64, grad []float64) float64 {
	i, j := int(x[0]), int(x[1])
	li := w[i*m.Rank : (i+1)*m.Rank]
	off := m.Rows * m.Rank
	rj := w[off+j*m.Rank : off+(j+1)*m.Rank]
	pred := array.Dot(li, rj)
	e := pred - y
	gl := grad[i*m.Rank : (i+1)*m.Rank]
	gr := grad[off+j*m.Rank : off+(j+1)*m.Rank]
	for k := 0; k < m.Rank; k++ {
		gl[k] += 2*e*rj[k] + 2*m.Mu*li[k]
		gr[k] += 2*e*li[k] + 2*m.Mu*rj[k]
	}
	reg := m.Mu * (array.Dot(li, li) + array.Dot(rj, rj))
	return e*e + reg
}

// LossAndGrad implements Model.
func (m LowRank) LossAndGrad(w []float64, example any, grad []float64) float64 {
	ex := example.(RatingExample)
	return m.LossGrad(w, []float64{float64(ex.I), float64(ex.J)}, ex.Value, grad)
}

// Predict returns LᵢᵀRⱼ under weights w.
func (m LowRank) Predict(w []float64, i, j int) float64 {
	li := w[i*m.Rank : (i+1)*m.Rank]
	off := m.Rows * m.Rank
	rj := w[off+j*m.Rank : off+(j+1)*m.Rank]
	return array.Dot(li, rj)
}

// InitWeights returns small random-ish deterministic factors so the
// low-rank problem does not start at the saddle point w = 0 (where the
// gradient vanishes identically).
func (m LowRank) InitWeights(scale float64) []float64 {
	w := make([]float64, m.Dim())
	// A fixed low-discrepancy fill keeps runs deterministic.
	x := 0.5
	for i := range w {
		x = math.Mod(x*9301.0+49297.0, 233280.0)
		w[i] = scale * (x/233280.0 - 0.5)
	}
	return w
}

// TrainLowRank is a convenience wrapper that starts from non-zero factors,
// since w = 0 is a saddle point of the factorization objective.
func TrainLowRank(db *engine.DB, table *engine.Table, extract Extractor, model LowRank, opts Options) (*Result, error) {
	opts.Start = model.InitWeights(0.5)
	return Train(db, table, extract, model, opts)
}
