package sgd

import (
	"errors"
	"math"
	"testing"

	"madlib/internal/datagen"
	"madlib/internal/engine"
)

func loadLabeled(t *testing.T, db *engine.DB, name string, xs [][]float64, ys []float64) *engine.Table {
	t.Helper()
	tbl, err := db.CreateTable(name, engine.Schema{
		{Name: "y", Kind: engine.Float},
		{Name: "x", Kind: engine.Vector},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if err := tbl.Insert(ys[i], xs[i]); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestLeastSquaresRecovers(t *testing.T) {
	db := engine.Open(4)
	gen := datagen.NewRegression(1, 5000, 4, 0.05)
	tbl, _ := gen.LoadRegression(db, "d")
	res, err := Train(db, tbl, ExtractLabeled(0, 1), LeastSquares{K: 4}, Options{StepSize: 0.05, MaxPasses: 60})
	if err != nil {
		t.Fatal(err)
	}
	for i := range gen.Coef {
		if math.Abs(res.Weights[i]-gen.Coef[i]) > 0.1 {
			t.Fatalf("w[%d] = %v, true %v", i, res.Weights[i], gen.Coef[i])
		}
	}
	// Loss decreases overall.
	first, last := res.LossHistory[0], res.LossHistory[len(res.LossHistory)-1]
	if last > first/4 {
		t.Fatalf("loss %v → %v did not fall enough", first, last)
	}
}

func TestLassoSparsifies(t *testing.T) {
	// True model uses only feature 1 of 6; lasso should zero most of the
	// irrelevant weights, plain least squares should not.
	db := engine.Open(3)
	gen := datagen.NewRegression(2, 4000, 6, 0.05)
	for i := range gen.X {
		// Rebuild y from feature 1 only (plus intercept).
		gen.Y[i] = 2*gen.X[i][0] + 3*gen.X[i][1]
	}
	tbl, _ := gen.LoadRegression(db, "d")
	lasso, err := Train(db, tbl, ExtractLabeled(0, 1), Lasso{K: 6, Mu: 2.0}, Options{StepSize: 0.05, MaxPasses: 80})
	if err != nil {
		t.Fatal(err)
	}
	zeros := 0
	for _, w := range lasso.Weights[2:] {
		if w == 0 {
			zeros++
		}
	}
	if zeros < 2 {
		t.Fatalf("lasso left irrelevant weights dense: %v", lasso.Weights)
	}
	// L1 regularization biases coefficients toward zero by roughly Mu/2
	// for standardized features, so require the signal weight to stay
	// clearly active rather than match the generator exactly.
	if lasso.Weights[1] < 1.5 {
		t.Fatalf("lasso lost the signal weight: %v", lasso.Weights)
	}
}

func TestLogisticMatchesGenerator(t *testing.T) {
	db := engine.Open(4)
	gen := datagen.NewLogistic(3, 10000, 3)
	// Convert labels to ±1 for the Table-2 objective.
	tbl, _ := db.CreateTable("d", engine.Schema{
		{Name: "y", Kind: engine.Float},
		{Name: "x", Kind: engine.Vector},
	})
	for i := range gen.X {
		y := -1.0
		if gen.Y[i] == 1 {
			y = 1
		}
		if err := tbl.Insert(y, gen.X[i]); err != nil {
			t.Fatal(err)
		}
	}
	res, err := Train(db, tbl, ExtractLabeled(0, 1), Logistic{K: 3}, Options{StepSize: 0.5, MaxPasses: 120, Tolerance: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	for i := range gen.Coef {
		if math.Abs(res.Weights[i]-gen.Coef[i]) > 0.25 {
			t.Fatalf("w[%d] = %v, true %v", i, res.Weights[i], gen.Coef[i])
		}
	}
}

func TestHingeSVMSeparates(t *testing.T) {
	db := engine.Open(3)
	gen := datagen.NewMargin(4, 3000, 4, 0.5)
	tbl, _ := gen.Load(db, "d")
	res, err := Train(db, tbl, ExtractLabeled(0, 1), HingeSVM{K: 4}, Options{StepSize: 0.2, MaxPasses: 40, L2: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range gen.X {
		score := 0.0
		for j := range res.Weights {
			score += res.Weights[j] * gen.X[i][j]
		}
		if (score >= 0 && gen.Y[i] > 0) || (score < 0 && gen.Y[i] < 0) {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(gen.X)); acc < 0.97 {
		t.Fatalf("accuracy = %v", acc)
	}
}

func TestLowRankFactorization(t *testing.T) {
	db := engine.Open(3)
	ratings := datagen.NewRatings(5, 40, 30, 3, 6000, 0.01)
	tbl, _ := db.CreateTable("r", engine.Schema{
		{Name: "i", Kind: engine.Int},
		{Name: "j", Kind: engine.Int},
		{Name: "v", Kind: engine.Float},
	})
	for _, e := range ratings.Entries {
		if err := tbl.Insert(int64(e.I), int64(e.J), e.Value); err != nil {
			t.Fatal(err)
		}
	}
	model := LowRank{Rows: 40, Cols: 30, Rank: 3, Mu: 1e-4}
	res, err := TrainLowRank(db, tbl, ExtractRating(0, 1, 2), model, Options{StepSize: 0.05, MaxPasses: 200, Tolerance: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	// RMSE over the observed entries should approach the noise floor.
	var sse float64
	for _, e := range ratings.Entries {
		d := model.Predict(res.Weights, e.I, e.J) - e.Value
		sse += d * d
	}
	rmse := math.Sqrt(sse / float64(len(ratings.Entries)))
	if rmse > 0.2 {
		t.Fatalf("RMSE = %v", rmse)
	}
}

func TestMeanLoss(t *testing.T) {
	db := engine.Open(2)
	xs := [][]float64{{1, 0}, {1, 1}}
	ys := []float64{1, 3}
	tbl := loadLabeled(t, db, "d", xs, ys)
	// w = (1, 2) fits exactly: loss 0.
	loss, err := MeanLoss(db, tbl, ExtractLabeled(0, 1), LeastSquares{K: 2}, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if loss != 0 {
		t.Fatalf("loss = %v", loss)
	}
	// w = 0: loss = (1² + 3²)/2 = 5.
	loss, err = MeanLoss(db, tbl, ExtractLabeled(0, 1), LeastSquares{K: 2}, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if loss != 5 {
		t.Fatalf("loss = %v", loss)
	}
}

func TestAveragingAblation(t *testing.T) {
	// With averaging disabled, only one segment's chain survives each
	// pass; on a multi-segment table both settings must still learn, but
	// they are different algorithms and may differ numerically.
	db := engine.Open(4)
	gen := datagen.NewRegression(6, 3000, 3, 0.1)
	tbl, _ := gen.LoadRegression(db, "d")
	avg, err := Train(db, tbl, ExtractLabeled(0, 1), LeastSquares{K: 3}, Options{StepSize: 0.05, MaxPasses: 40})
	if err != nil {
		t.Fatal(err)
	}
	noavg, err := Train(db, tbl, ExtractLabeled(0, 1), LeastSquares{K: 3}, Options{StepSize: 0.05, MaxPasses: 40, NoAveraging: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range gen.Coef {
		if math.Abs(avg.Weights[i]-gen.Coef[i]) > 0.2 {
			t.Fatalf("averaged w[%d] = %v, true %v", i, avg.Weights[i], gen.Coef[i])
		}
		if math.Abs(noavg.Weights[i]-gen.Coef[i]) > 0.4 {
			t.Fatalf("no-averaging w[%d] = %v, true %v", i, noavg.Weights[i], gen.Coef[i])
		}
	}
}

func TestErrors(t *testing.T) {
	db := engine.Open(2)
	empty, _ := db.CreateTable("e", engine.Schema{
		{Name: "y", Kind: engine.Float},
		{Name: "x", Kind: engine.Vector},
	})
	if _, err := Train(db, empty, ExtractLabeled(0, 1), LeastSquares{K: 2}, Options{}); !errors.Is(err, ErrNoData) {
		t.Fatalf("want ErrNoData, got %v", err)
	}
	if _, err := Train(db, empty, ExtractLabeled(0, 1), LeastSquares{K: 0}, Options{}); err == nil {
		t.Fatal("zero-dim model should fail")
	}
	if _, err := Train(db, empty, ExtractLabeled(0, 1), LeastSquares{K: 2}, Options{Start: []float64{1}}); err == nil {
		t.Fatal("bad Start length should fail")
	}
	if _, err := MeanLoss(db, empty, ExtractLabeled(0, 1), LeastSquares{K: 2}, []float64{0, 0}); !errors.Is(err, ErrNoData) {
		t.Fatalf("want ErrNoData, got %v", err)
	}
}

func benchModel(b *testing.B, model Model, passes int) {
	db := engine.Open(4)
	gen := datagen.NewRegression(9, 10000, 8, 0.1)
	tbl, err := gen.LoadRegression(db, "bench")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(db, tbl, ExtractLabeled(0, 1), model, Options{MaxPasses: passes, Tolerance: 1e-12}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLeastSquaresPass(b *testing.B) { benchModel(b, LeastSquares{K: 8}, 1) }
func BenchmarkLassoPass(b *testing.B)        { benchModel(b, Lasso{K: 8, Mu: 0.1}, 1) }
func BenchmarkLogisticPass(b *testing.B)     { benchModel(b, Logistic{K: 8}, 1) }
func BenchmarkHingePass(b *testing.B)        { benchModel(b, HingeSVM{K: 8}, 1) }
