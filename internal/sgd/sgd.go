// Package sgd implements the Wisconsin convex-optimization abstraction of
// §5.1: a model is specified as a decomposable convex objective
// f(w) = Σᵢ fᵢ(w) where each database tuple encodes one term fᵢ, and a
// single generic incremental-gradient-descent (IGD) runner trains any such
// model as a sequence of aggregate queries. "Using this approach, we were
// able to add in implementations of all the models in Table 2 in a matter
// of days" — the Table-2 models (least squares, lasso, logistic
// regression, SVM, low-rank recommendation, CRF labeling) are provided in
// this package and internal/crf.
//
// Training executes on the unified harness of internal/igd: models whose
// examples fit the (label, features) column shapes run morsel-parallel
// epochs through vectorized gather kernels, while models with structured
// examples (CRF sentences, via ExtractFunc) keep the boxed row-at-a-time
// aggregate loop. Both lanes apply the same update — shrink, gradient
// step, proximal operator — in the same order, so the refactor preserves
// legacy models bit for bit on equal schedules.
package sgd

import (
	"errors"
	"fmt"
	"math"

	"madlib/internal/core"
	"madlib/internal/engine"
	"madlib/internal/igd"
)

func init() {
	core.RegisterMethod(core.MethodInfo{Name: "convex_sgd", Title: "Convex Optimization (SGD)", Category: core.Support})
}

// Model is one convex objective term family: given the current weights and
// one example, it reports the term's loss and accumulates its gradient.
type Model interface {
	// Dim is the weight-vector dimension.
	Dim() int
	// LossAndGrad returns fᵢ(w) and ADDS ∇fᵢ(w) into grad (callers zero it).
	LossAndGrad(w []float64, example any, grad []float64) float64
}

// Proximal is implemented by models with a non-smooth regularizer handled
// by a proximal step after each gradient update (e.g. lasso's L1).
type Proximal interface {
	// Prox applies the proximal operator for step size alpha in place.
	Prox(w []float64, alpha float64)
}

// ErrNoData is returned when the table holds no rows.
var ErrNoData = errors.New("sgd: no training rows")

// Options configure Train.
type Options struct {
	// StepSize is the initial learning rate (default 0.1). The effective
	// rate decays as StepSize/√pass, the diminishing schedule the paper's
	// convergence guarantee requires (α → 0, e.g. "α = 1/k").
	StepSize float64
	// L2 is an L2 regularization weight applied as per-step shrinkage.
	L2 float64
	// MaxPasses bounds data passes (default 50).
	MaxPasses int
	// Tolerance stops when the relative per-pass loss change falls below
	// it (default 1e-4).
	Tolerance float64
	// NoAveraging disables cross-segment model averaging: the merge keeps
	// the first segment's chain instead. Exists for the ablation bench.
	NoAveraging bool
	// Start is an optional warm-start weight vector (copied); nil starts
	// at zero. Models whose zero vector is a saddle point (LowRank) need
	// this.
	Start []float64
}

func (o *Options) defaults() {
	if o.StepSize == 0 {
		o.StepSize = 0.1
	}
	if o.MaxPasses == 0 {
		o.MaxPasses = 50
	}
	if o.Tolerance == 0 {
		o.Tolerance = 1e-4
	}
}

// Result reports a training run.
type Result struct {
	// Weights is the trained model.
	Weights []float64
	// LossHistory is the mean per-example loss of each pass (measured at
	// the pre-update weights as the chain scans).
	LossHistory []float64
	// Passes is the number of passes run.
	Passes int
	// NumRows is the number of examples per pass.
	NumRows int64
}

// Extractor names where a model's examples live. ExtractLabeled and
// ExtractRating describe vectorizable column shapes that train through
// the igd harness's batch gather kernels; ExtractFunc wraps an arbitrary
// row-to-example closure for models with structured examples (CRF),
// which train on the boxed row-at-a-time lane.
type Extractor struct {
	features   igd.Features
	vectorized bool
	fn         func(engine.Row) any
}

// chainState is one segment's SGD chain (boxed lane).
type chainState struct {
	w    []float64
	grad []float64 // scratch
	loss float64
	n    int64
}

// Train runs IGD over the table. Models implementing igd.GradLoss with a
// vectorizable Extractor run morsel-parallel vectorized epochs on the
// igd harness; anything else falls back to the boxed aggregate loop.
func Train(db *engine.DB, table *engine.Table, ex Extractor, model Model, opts Options) (*Result, error) {
	opts.defaults()
	dim := model.Dim()
	if dim <= 0 {
		return nil, fmt.Errorf("sgd: model dimension %d", dim)
	}
	if g, ok := model.(igd.GradLoss); ok && ex.vectorized {
		res, err := igd.Train(db, table, ex.features, igd.FromGrad(g, opts.L2), igd.Options{
			StepSize:    opts.StepSize,
			Epochs:      opts.MaxPasses,
			Tolerance:   opts.Tolerance,
			NoAveraging: opts.NoAveraging,
			Start:       opts.Start,
		})
		if err != nil {
			if errors.Is(err, igd.ErrNoData) {
				return nil, ErrNoData
			}
			return nil, err
		}
		return &Result{
			Weights:     res.Weights,
			LossHistory: res.LossHistory,
			Passes:      res.Epochs,
			NumRows:     res.NumRows,
		}, nil
	}
	return trainBoxed(db, table, ex.fn, model, opts)
}

// trainBoxed is the pre-harness aggregate loop: one FuncAggregate query
// per pass, one boxed example per row. Kept for models whose examples do
// not fit a dense (x, y) shape.
func trainBoxed(db *engine.DB, table *engine.Table, extract func(engine.Row) any, model Model, opts Options) (*Result, error) {
	dim := model.Dim()
	res := &Result{Weights: make([]float64, dim)}
	if opts.Start != nil {
		if len(opts.Start) != dim {
			return nil, fmt.Errorf("sgd: Start has %d weights, model needs %d", len(opts.Start), dim)
		}
		copy(res.Weights, opts.Start)
	}
	prox, hasProx := model.(Proximal)
	for pass := 1; pass <= opts.MaxPasses; pass++ {
		alpha := opts.StepSize / math.Sqrt(float64(pass))
		w0 := append([]float64(nil), res.Weights...)
		agg := engine.FuncAggregate{
			InitFn: func() any {
				return &chainState{w: append([]float64(nil), w0...), grad: make([]float64, dim)}
			},
			TransitionFn: func(s any, row engine.Row) any {
				st := s.(*chainState)
				ex := extract(row)
				for i := range st.grad {
					st.grad[i] = 0
				}
				st.loss += model.LossAndGrad(st.w, ex, st.grad)
				if opts.L2 > 0 {
					shrink := 1 - alpha*opts.L2
					if shrink < 0 {
						shrink = 0
					}
					for i := range st.w {
						st.w[i] *= shrink
					}
				}
				for i := range st.w {
					st.w[i] -= alpha * st.grad[i]
				}
				if hasProx {
					prox.Prox(st.w, alpha)
				}
				st.n++
				return st
			},
			MergeFn: func(a, b any) any {
				sa, sb := a.(*chainState), b.(*chainState)
				total := sa.n + sb.n
				if total == 0 {
					return sa
				}
				if opts.NoAveraging {
					// Keep the chain that saw rows; losses still combine.
					if sa.n == 0 {
						sb.loss += sa.loss
						return sb
					}
					sa.loss += sb.loss
					sa.n = total
					return sa
				}
				wa := float64(sa.n) / float64(total)
				wb := float64(sb.n) / float64(total)
				for i := range sa.w {
					sa.w[i] = wa*sa.w[i] + wb*sb.w[i]
				}
				sa.loss += sb.loss
				sa.n = total
				return sa
			},
			FinalFn: func(s any) (any, error) { return s, nil },
		}
		v, err := db.Run(table, agg)
		if err != nil {
			return nil, err
		}
		st := v.(*chainState)
		if st.n == 0 {
			return nil, ErrNoData
		}
		res.Weights = st.w
		if hasProx {
			// Cross-segment averaging blends exact zeros into small
			// residuals; re-applying the proximal operator to the merged
			// model restores the sparsity pattern at each pass boundary.
			prox.Prox(res.Weights, alpha)
		}
		res.NumRows = st.n
		res.Passes = pass
		meanLoss := st.loss / float64(st.n)
		res.LossHistory = append(res.LossHistory, meanLoss)
		if pass >= 2 {
			prev := res.LossHistory[pass-2]
			if math.Abs(prev-meanLoss) < opts.Tolerance*(math.Abs(prev)+1e-12) {
				break
			}
		}
	}
	return res, nil
}

// MeanLoss evaluates the mean per-example loss of weights w over the table
// without updating them (one query; vectorized when the model and
// extractor allow it).
func MeanLoss(db *engine.DB, table *engine.Table, ex Extractor, model Model, w []float64) (float64, error) {
	if g, ok := model.(igd.GradLoss); ok && ex.vectorized {
		v, err := igd.Evaluate(db, table, ex.features, igd.FromGrad(g, 0), w)
		if errors.Is(err, igd.ErrNoData) {
			return 0, ErrNoData
		}
		return v, err
	}
	return meanLossBoxed(db, table, ex.fn, model, w)
}

func meanLossBoxed(db *engine.DB, table *engine.Table, extract func(engine.Row) any, model Model, w []float64) (float64, error) {
	type acc struct {
		loss float64
		n    int64
		grad []float64 // per-segment scratch, discarded
	}
	v, err := db.Run(table, engine.FuncAggregate{
		InitFn: func() any { return &acc{grad: make([]float64, len(w))} },
		TransitionFn: func(s any, row engine.Row) any {
			st := s.(*acc)
			for i := range st.grad {
				st.grad[i] = 0
			}
			st.loss += model.LossAndGrad(w, extract(row), st.grad)
			st.n++
			return st
		},
		MergeFn: func(a, b any) any {
			sa, sb := a.(*acc), b.(*acc)
			sa.loss += sb.loss
			sa.n += sb.n
			return sa
		},
		FinalFn: func(s any) (any, error) { return s, nil },
	})
	if err != nil {
		return 0, err
	}
	st := v.(*acc)
	if st.n == 0 {
		return 0, ErrNoData
	}
	return st.loss / float64(st.n), nil
}
