package kmeans

import (
	"errors"
	"math"
	"sort"
	"testing"

	"madlib/internal/datagen"
	"madlib/internal/engine"
)

// matchCentroids greedily pairs found centroids to true centers and returns
// the worst pairing distance.
func matchCentroids(found, truth [][]float64) float64 {
	used := make([]bool, len(truth))
	worst := 0.0
	for _, f := range found {
		best, bi := math.Inf(1), -1
		for i, c := range truth {
			if used[i] {
				continue
			}
			var d float64
			for j := range c {
				diff := c[j] - f[j]
				d += diff * diff
			}
			if d < best {
				best, bi = d, i
			}
		}
		if bi >= 0 {
			used[bi] = true
		}
		if s := math.Sqrt(best); s > worst {
			worst = s
		}
	}
	return worst
}

func wellSeparated(t *testing.T, seed int64) (*engine.DB, *engine.Table, *datagen.Clusters) {
	t.Helper()
	db := engine.Open(4)
	gen := datagen.NewClusters(seed, 3000, 4, 3, 0.4)
	tbl, err := gen.Load(db, "points")
	if err != nil {
		t.Fatal(err)
	}
	return db, tbl, gen
}

func TestUDAOnlyFindsClusters(t *testing.T) {
	db, tbl, gen := wellSeparated(t, 1)
	res, err := Run(db, tbl, "coords", Options{K: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if worst := matchCentroids(res.Centroids, gen.Centers); worst > 0.5 {
		t.Fatalf("worst centroid error %v", worst)
	}
	if res.Iterations < 1 || res.Iterations > 50 {
		t.Fatalf("iterations = %d", res.Iterations)
	}
	var total int64
	for _, s := range res.Sizes {
		total += s
	}
	if total != 3000 {
		t.Fatalf("sizes sum to %d", total)
	}
}

func TestAssignmentTablePattern(t *testing.T) {
	db, tbl, gen := wellSeparated(t, 2)
	res, err := Run(db, tbl, "coords", Options{K: 4, Pattern: AssignmentTable, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if worst := matchCentroids(res.Centroids, gen.Centers); worst > 0.5 {
		t.Fatalf("worst centroid error %v", worst)
	}
	// The assignment column must now hold the final clustering: every
	// point's stored id must be the closest centroid.
	bad, err := db.CountWhere(tbl, func(r engine.Row) bool {
		j, _ := Closest(res.Centroids, r.Vector(0))
		return r.Int(1) != int64(j)
	})
	if err != nil {
		t.Fatal(err)
	}
	// The loop may stop with a small fraction still moving.
	if bad > 30 {
		t.Fatalf("%d stale assignments", bad)
	}
}

func TestPatternsAgree(t *testing.T) {
	db, tbl, _ := wellSeparated(t, 3)
	a, err := Run(db, tbl, "coords", Options{K: 4, Pattern: UDAOnly, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(db, tbl, "coords", Options{K: 4, Pattern: AssignmentTable, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Same data, same seeding → same local optimum.
	if worst := matchCentroids(a.Centroids, b.Centroids); worst > 1e-6 {
		t.Fatalf("patterns diverge by %v", worst)
	}
}

func TestObjectiveDecreases(t *testing.T) {
	db, tbl, _ := wellSeparated(t, 4)
	res, err := Run(db, tbl, "coords", Options{K: 4, Seeding: Random, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	hist := res.ObjectiveHistory
	for i := 1; i < len(hist); i++ {
		if hist[i] > hist[i-1]*1.000001 {
			t.Fatalf("objective increased at %d: %v", i, hist)
		}
	}
}

func TestPlusPlusBeatsRandomOnAverage(t *testing.T) {
	// k-means++ should rarely produce a catastrophically bad seeding on
	// well-separated clusters; compare best-of-3 objectives loosely.
	db, tbl, _ := wellSeparated(t, 5)
	bestPP, bestRand := math.Inf(1), math.Inf(1)
	for s := int64(0); s < 3; s++ {
		pp, err := Run(db, tbl, "coords", Options{K: 4, Seeding: PlusPlus, Seed: s})
		if err != nil {
			t.Fatal(err)
		}
		rd, err := Run(db, tbl, "coords", Options{K: 4, Seeding: Random, Seed: s})
		if err != nil {
			t.Fatal(err)
		}
		bestPP = math.Min(bestPP, pp.Objective)
		bestRand = math.Min(bestRand, rd.Objective)
	}
	if bestPP > bestRand*5 {
		t.Fatalf("k-means++ best %v wildly worse than random best %v", bestPP, bestRand)
	}
}

func TestClosest(t *testing.T) {
	cents := [][]float64{{0, 0}, {10, 0}}
	j, d2 := Closest(cents, []float64{1, 0})
	if j != 0 || d2 != 1 {
		t.Fatalf("Closest = %d, %v", j, d2)
	}
	j, _ = Closest(cents, []float64{9, 0})
	if j != 1 {
		t.Fatalf("Closest = %d", j)
	}
}

func TestK1(t *testing.T) {
	db := engine.Open(2)
	gen := datagen.NewClusters(6, 100, 1, 2, 1.0)
	tbl, _ := gen.Load(db, "points")
	res, err := Run(db, tbl, "coords", Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != 1 {
		t.Fatalf("centroids = %d", len(res.Centroids))
	}
	// Single centroid must be the global mean.
	var mean [2]float64
	for _, p := range gen.Points {
		mean[0] += p[0]
		mean[1] += p[1]
	}
	mean[0] /= 100
	mean[1] /= 100
	if math.Abs(res.Centroids[0][0]-mean[0]) > 1e-9 || math.Abs(res.Centroids[0][1]-mean[1]) > 1e-9 {
		t.Fatalf("centroid %v != mean %v", res.Centroids[0], mean)
	}
}

func TestErrors(t *testing.T) {
	db := engine.Open(2)
	tbl, _ := db.CreateTable("p", engine.Schema{{Name: "coords", Kind: engine.Vector}})
	if err := tbl.Insert([]float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(db, tbl, "coords", Options{K: 5}); !errors.Is(err, ErrNoData) {
		t.Fatalf("want ErrNoData, got %v", err)
	}
	if _, err := Run(db, tbl, "coords", Options{K: 0}); err == nil {
		t.Fatal("K=0 should fail")
	}
	if _, err := Run(db, tbl, "nope", Options{K: 1}); err == nil {
		t.Fatal("missing column should fail")
	}
	if _, err := Run(db, tbl, "coords", Options{K: 1, Pattern: AssignmentTable}); err == nil {
		t.Fatal("AssignmentTable without Int column should fail")
	}
}

func TestDuplicatePointsSeeding(t *testing.T) {
	// All points identical: k-means++ must still return K centroids.
	db := engine.Open(2)
	tbl, _ := db.CreateTable("p", engine.Schema{{Name: "coords", Kind: engine.Vector}})
	for i := 0; i < 10; i++ {
		if err := tbl.Insert([]float64{3, 3}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := Run(db, tbl, "coords", Options{K: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != 3 {
		t.Fatalf("centroids = %d", len(res.Centroids))
	}
	if res.Objective > 1e-12 {
		t.Fatalf("objective = %v for identical points", res.Objective)
	}
}

func TestSizesOrdering(t *testing.T) {
	// Verify Sizes corresponds to Centroids indices: biggest planted
	// cluster should map to the centroid nearest its center.
	db := engine.Open(3)
	tbl, _ := db.CreateTable("p", engine.Schema{{Name: "coords", Kind: engine.Vector}})
	// 80 points near (0,0), 20 near (10,10).
	for i := 0; i < 80; i++ {
		if err := tbl.Insert([]float64{float64(i%5) * 0.01, 0}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		if err := tbl.Insert([]float64{10, 10 + float64(i%5)*0.01}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := Run(db, tbl, "coords", Options{K: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sizes := append([]int64(nil), res.Sizes...)
	sort.Slice(sizes, func(i, j int) bool { return sizes[i] > sizes[j] })
	if sizes[0] != 80 || sizes[1] != 20 {
		t.Fatalf("sizes = %v", res.Sizes)
	}
}

func BenchmarkUDAOnly(b *testing.B) {
	db := engine.Open(4)
	gen := datagen.NewClusters(7, 20000, 8, 4, 0.5)
	tbl, _ := gen.Load(db, "points")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(db, tbl, "coords", Options{K: 8, Seed: 1, MaxIterations: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAssignmentTable(b *testing.B) {
	db := engine.Open(4)
	gen := datagen.NewClusters(7, 20000, 8, 4, 0.5)
	tbl, _ := gen.Load(db, "points")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(db, tbl, "coords", Options{K: 8, Seed: 1, MaxIterations: 10, Pattern: AssignmentTable}); err != nil {
			b.Fatal(err)
		}
	}
}
