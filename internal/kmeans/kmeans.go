// Package kmeans implements Lloyd's k-means clustering as the paper's §4.3
// large-state iterative example. Two macro-programming patterns are
// provided, reproducing the design discussion there:
//
//   - UDAOnly — assignments stay implicit; every iteration is a single
//     aggregate pass, but checking the convergence criterion ("no or only
//     few points got reassigned") costs two closest-centroid computations
//     per point and iteration, exactly as the paper notes.
//   - AssignmentTable — each point's current centroid id is stored in an
//     Int column of the points table (UPDATE points SET centroid_id =
//     closest_column(centroids, coords)); an iteration is then two passes
//     (update assignments, recompute barycenters) but only one
//     closest-centroid computation per point.
//
// Seeding supports uniform random sampling and k-means++ [5], both run as
// aggregate queries so the data never leaves the engine.
package kmeans

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"

	"madlib/internal/array"
	"madlib/internal/core"
	"madlib/internal/engine"
)

func init() {
	core.RegisterMethod(core.MethodInfo{Name: "kmeans", Title: "k-Means Clustering", Category: core.Unsupervised})
}

// Seeding selects the centroid initialization strategy.
type Seeding int

const (
	// PlusPlus is k-means++ D² weighting (default).
	PlusPlus Seeding = iota
	// Random samples k points uniformly.
	Random
)

// Pattern selects the §4.3 macro-programming pattern.
type Pattern int

const (
	// UDAOnly keeps assignments implicit (one pass, two closest-centroid
	// computations per point).
	UDAOnly Pattern = iota
	// AssignmentTable materializes assignments in the points table (two
	// passes, one closest-centroid computation per point). Requires the
	// table to have an Int assignment column.
	AssignmentTable
)

// ErrNoData is returned when the table has fewer points than clusters.
var ErrNoData = errors.New("kmeans: not enough points")

// Options configure Run.
type Options struct {
	// K is the number of clusters (required).
	K int
	// Seeding picks the initialization (default PlusPlus).
	Seeding Seeding
	// Pattern picks the macro-pattern (default UDAOnly).
	Pattern Pattern
	// AssignmentColumn names the Int column used by AssignmentTable
	// (default "centroid_id").
	AssignmentColumn string
	// MaxIterations bounds the Lloyd loop (default 50).
	MaxIterations int
	// ReassignFraction stops iteration once fewer than this fraction of
	// points changed centroid (default 0.001).
	ReassignFraction float64
	// Seed drives the seeding RNG.
	Seed int64
}

func (o *Options) defaults() error {
	if o.K < 1 {
		return errors.New("kmeans: K must be at least 1")
	}
	if o.MaxIterations == 0 {
		o.MaxIterations = 50
	}
	if o.ReassignFraction == 0 {
		o.ReassignFraction = 0.001
	}
	if o.AssignmentColumn == "" {
		o.AssignmentColumn = "centroid_id"
	}
	return nil
}

// Result reports the clustering.
type Result struct {
	// Centroids are the final cluster centers.
	Centroids [][]float64
	// Sizes are the number of points assigned to each centroid.
	Sizes []int64
	// Objective is the final sum of squared point-to-centroid distances.
	Objective float64
	// ObjectiveHistory records the objective after each iteration.
	ObjectiveHistory []float64
	// Iterations is the number of Lloyd iterations run.
	Iterations int
}

// Closest returns the index of the centroid nearest to x and the squared
// distance — the library's closest_column UDF.
func Closest(centroids [][]float64, x []float64) (int, float64) {
	best, bi := math.Inf(1), -1
	for j, c := range centroids {
		if d := array.SquaredDistance(c, x); d < best {
			best, bi = d, j
		}
	}
	return bi, best
}

// Run clusters the points in coordsCol (a Vector column).
func Run(db *engine.DB, table *engine.Table, coordsCol string, opts Options) (*Result, error) {
	if err := opts.defaults(); err != nil {
		return nil, err
	}
	schema := table.Schema()
	ci := schema.Index(coordsCol)
	if ci < 0 {
		return nil, fmt.Errorf("%w: %q", engine.ErrNoColumn, coordsCol)
	}
	if schema[ci].Kind != engine.Vector {
		return nil, fmt.Errorf("kmeans: column %q must be %s", coordsCol, engine.Vector)
	}
	if table.Count() < int64(opts.K) {
		return nil, fmt.Errorf("%w: %d points for K=%d", ErrNoData, table.Count(), opts.K)
	}
	centroids, err := seed(db, table, ci, opts)
	if err != nil {
		return nil, err
	}
	switch opts.Pattern {
	case UDAOnly:
		return lloydUDAOnly(db, table, ci, centroids, opts)
	case AssignmentTable:
		return lloydAssignmentTable(db, table, ci, centroids, opts)
	}
	return nil, fmt.Errorf("kmeans: unknown pattern %d", opts.Pattern)
}

// seed produces the initial centroids.
func seed(db *engine.DB, t *engine.Table, ci int, opts Options) ([][]float64, error) {
	switch opts.Seeding {
	case Random:
		return seedRandom(db, t, ci, opts.K, opts.Seed)
	case PlusPlus:
		return seedPlusPlus(db, t, ci, opts.K, opts.Seed)
	}
	return nil, fmt.Errorf("kmeans: unknown seeding %d", opts.Seeding)
}

// seedRandom reservoir-samples k points in one aggregate pass.
func seedRandom(db *engine.DB, t *engine.Table, ci, k int, seedVal int64) ([][]float64, error) {
	type reservoir struct {
		rng  *rand.Rand
		pts  [][]float64
		seen int64
	}
	segSeed := atomic.Int64{}
	segSeed.Store(seedVal)
	v, err := db.Run(t, engine.FuncAggregate{
		InitFn: func() any {
			return &reservoir{rng: rand.New(rand.NewSource(segSeed.Add(1)))}
		},
		TransitionFn: func(s any, row engine.Row) any {
			st := s.(*reservoir)
			st.seen++
			x := row.Vector(ci)
			if len(st.pts) < k {
				st.pts = append(st.pts, array.Clone(x))
			} else if j := st.rng.Int63n(st.seen); j < int64(k) {
				st.pts[j] = array.Clone(x)
			}
			return st
		},
		MergeFn: func(a, b any) any {
			sa, sb := a.(*reservoir), b.(*reservoir)
			// Merge two reservoirs: weighted subsampling keeps uniformity
			// approximately; exactness is unnecessary for seeding.
			total := sa.seen + sb.seen
			for _, p := range sb.pts {
				if len(sa.pts) < k {
					sa.pts = append(sa.pts, p)
				} else if total > 0 && sa.rng.Int63n(total) < sb.seen {
					sa.pts[sa.rng.Intn(len(sa.pts))] = p
				}
			}
			sa.seen = total
			return sa
		},
		FinalFn: func(s any) (any, error) { return s.(*reservoir).pts, nil },
	})
	if err != nil {
		return nil, err
	}
	pts := v.([][]float64)
	if len(pts) < k {
		return nil, ErrNoData
	}
	return pts, nil
}

// seedPlusPlus implements k-means++: each new centroid is sampled with
// probability proportional to its squared distance from the chosen set,
// via one weighted-reservoir aggregate pass per centroid.
func seedPlusPlus(db *engine.DB, t *engine.Table, ci, k int, seedVal int64) ([][]float64, error) {
	first, err := seedRandom(db, t, ci, 1, seedVal)
	if err != nil {
		return nil, err
	}
	centroids := first
	segSeed := atomic.Int64{}
	segSeed.Store(seedVal + 1000)
	type wr struct {
		rng  *rand.Rand
		best []float64
		key  float64 // A-Res key: u^(1/w); max wins
	}
	for len(centroids) < k {
		chosen := centroids
		v, err := db.Run(t, engine.FuncAggregate{
			InitFn: func() any {
				return &wr{rng: rand.New(rand.NewSource(segSeed.Add(1))), key: -1}
			},
			TransitionFn: func(s any, row engine.Row) any {
				st := s.(*wr)
				x := row.Vector(ci)
				_, d2 := Closest(chosen, x)
				if d2 <= 0 {
					return st
				}
				key := math.Pow(st.rng.Float64(), 1/d2)
				if key > st.key {
					st.key = key
					st.best = array.Clone(x)
				}
				return st
			},
			MergeFn: func(a, b any) any {
				sa, sb := a.(*wr), b.(*wr)
				if sb.key > sa.key {
					return sb
				}
				return sa
			},
			FinalFn: func(s any) (any, error) { return s.(*wr).best, nil },
		})
		if err != nil {
			return nil, err
		}
		best, _ := v.([]float64)
		if best == nil {
			// All remaining points coincide with existing centroids;
			// duplicate one arbitrarily so K centroids exist.
			best = array.Clone(centroids[0])
		}
		centroids = append(centroids, best)
	}
	return centroids, nil
}

// lloydState is the intra-iteration aggregation state: per-centroid sums
// and counts, plus the reassignment tally and objective.
type lloydState struct {
	sums       [][]float64
	counts     []int64
	reassigned int64
	total      int64
	objective  float64
}

func newLloydState(k, dim int) *lloydState {
	s := &lloydState{sums: make([][]float64, k), counts: make([]int64, k)}
	for i := range s.sums {
		s.sums[i] = make([]float64, dim)
	}
	return s
}

func (s *lloydState) merge(o *lloydState) {
	for i := range s.sums {
		array.AddTo(s.sums[i], o.sums[i])
		s.counts[i] += o.counts[i]
	}
	s.reassigned += o.reassigned
	s.total += o.total
	s.objective += o.objective
}

// lloydUDAOnly runs Lloyd iterations where each iteration is one aggregate
// pass; the transition computes closest centroids under both the current
// and previous inter-iteration states to count reassignments (the double
// computation §4.3 describes).
func lloydUDAOnly(db *engine.DB, t *engine.Table, ci int, centroids [][]float64, opts Options) (*Result, error) {
	dim := len(centroids[0])
	k := opts.K
	res := &Result{}
	var prev [][]float64
	for iter := 1; iter <= opts.MaxIterations; iter++ {
		cur, prevSnapshot := centroids, prev
		v, err := db.Run(t, engine.FuncAggregate{
			InitFn: func() any { return newLloydState(k, dim) },
			TransitionFn: func(s any, row engine.Row) any {
				st := s.(*lloydState)
				x := row.Vector(ci)
				j, d2 := Closest(cur, x)
				array.AddTo(st.sums[j], x)
				st.counts[j]++
				st.total++
				st.objective += d2
				if prevSnapshot != nil {
					if jPrev, _ := Closest(prevSnapshot, x); jPrev != j {
						st.reassigned++
					}
				} else {
					st.reassigned++
				}
				return st
			},
			MergeFn: func(a, b any) any {
				sa := a.(*lloydState)
				sa.merge(b.(*lloydState))
				return sa
			},
			FinalFn: func(s any) (any, error) { return s, nil },
		})
		if err != nil {
			return nil, err
		}
		st := v.(*lloydState)
		prev = centroids
		centroids = reposition(st, centroids)
		res.Iterations = iter
		res.ObjectiveHistory = append(res.ObjectiveHistory, st.objective)
		res.Objective = st.objective
		res.Sizes = st.counts
		if float64(st.reassigned) <= opts.ReassignFraction*float64(st.total) {
			break
		}
	}
	res.Centroids = centroids
	return res, nil
}

// lloydAssignmentTable runs Lloyd iterations as two passes: UPDATE the
// assignment column, then recompute barycenters grouped by it.
func lloydAssignmentTable(db *engine.DB, t *engine.Table, ci int, centroids [][]float64, opts Options) (*Result, error) {
	schema := t.Schema()
	ai := schema.Index(opts.AssignmentColumn)
	if ai < 0 {
		return nil, fmt.Errorf("kmeans: AssignmentTable pattern needs an Int column %q", opts.AssignmentColumn)
	}
	if schema[ai].Kind != engine.Int {
		return nil, fmt.Errorf("kmeans: column %q must be %s", opts.AssignmentColumn, engine.Int)
	}
	dim := len(centroids[0])
	k := opts.K
	res := &Result{}
	for iter := 1; iter <= opts.MaxIterations; iter++ {
		// Pass 1: UPDATE points SET centroid_id = closest(centroids, coords),
		// counting reassignments as we go (one closest computation/point).
		cur := centroids
		var reassigned, total atomic.Int64
		err := db.UpdateInt(t, opts.AssignmentColumn, func(row engine.Row) int64 {
			x := row.Vector(ci)
			j, _ := Closest(cur, x)
			if row.Int(ai) != int64(j) {
				reassigned.Add(1)
			}
			total.Add(1)
			return int64(j)
		})
		if err != nil {
			return nil, err
		}
		// Pass 2: recompute barycenters grouped by the stored assignment.
		v, err := db.Run(t, engine.FuncAggregate{
			InitFn: func() any { return newLloydState(k, dim) },
			TransitionFn: func(s any, row engine.Row) any {
				st := s.(*lloydState)
				x := row.Vector(ci)
				j := int(row.Int(ai))
				array.AddTo(st.sums[j], x)
				st.counts[j]++
				st.total++
				st.objective += array.SquaredDistance(cur[j], x)
				return st
			},
			MergeFn: func(a, b any) any {
				sa := a.(*lloydState)
				sa.merge(b.(*lloydState))
				return sa
			},
			FinalFn: func(s any) (any, error) { return s, nil },
		})
		if err != nil {
			return nil, err
		}
		st := v.(*lloydState)
		centroids = reposition(st, centroids)
		res.Iterations = iter
		res.ObjectiveHistory = append(res.ObjectiveHistory, st.objective)
		res.Objective = st.objective
		res.Sizes = st.counts
		if float64(reassigned.Load()) <= opts.ReassignFraction*float64(total.Load()) {
			break
		}
	}
	res.Centroids = centroids
	return res, nil
}

// reposition computes new centroids as barycenters; empty clusters keep
// their previous position.
func reposition(st *lloydState, prev [][]float64) [][]float64 {
	out := make([][]float64, len(prev))
	for j := range prev {
		if st.counts[j] == 0 {
			out[j] = array.Clone(prev[j])
			continue
		}
		c := array.Clone(st.sums[j])
		array.Scale(1/float64(st.counts[j]), c)
		out[j] = c
	}
	return out
}
