// Package dtree implements C4.5 decision trees (Table 1): gain-ratio
// splits over numeric and categorical attributes, and pessimistic-error
// post-pruning with the classic confidence-factor upper bound.
//
// Training materializes the (features, label) pairs out of the engine with
// a single scan and builds the tree in memory — mirroring MADlib's C4.5,
// which stages training data into internal tables before its recursive
// partitioning. Classification is pure in-memory traversal.
package dtree

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"madlib/internal/core"
	"madlib/internal/engine"
	"madlib/internal/stats"
)

func init() {
	core.RegisterMethod(core.MethodInfo{Name: "c45", Title: "Decision Trees (C4.5)", Category: core.Supervised})
}

// FeatureKind declares how an attribute is split.
type FeatureKind int

const (
	// Numeric features split on a threshold (x[f] <= t).
	Numeric FeatureKind = iota
	// Categorical features split multiway on exact values.
	Categorical
)

// ErrNoData is returned when training sees no rows.
var ErrNoData = errors.New("dtree: no training rows")

// Options configure training.
type Options struct {
	// FeatureKinds declares each feature's kind; nil means all Numeric.
	FeatureKinds []FeatureKind
	// MaxDepth bounds the tree (default 12).
	MaxDepth int
	// MinRows is the minimum rows needed to attempt a split (default 4).
	MinRows int
	// MinLeaf is the minimum rows each branch of a split must receive
	// (default 2), C4.5's minimum-objects-per-branch rule.
	MinLeaf int
	// Prune enables pessimistic-error pruning (default on; set NoPrune to
	// disable).
	NoPrune bool
	// ConfidenceFactor is the C4.5 CF for the pruning upper bound
	// (default 0.25).
	ConfidenceFactor float64
}

func (o *Options) defaults() {
	if o.MaxDepth == 0 {
		o.MaxDepth = 12
	}
	if o.MinRows == 0 {
		o.MinRows = 4
	}
	if o.MinLeaf == 0 {
		o.MinLeaf = 2
	}
	if o.ConfidenceFactor == 0 {
		o.ConfidenceFactor = 0.25
	}
}

// Node is one tree node.
type Node struct {
	// Leaf marks terminal nodes.
	Leaf bool
	// Class is the majority class at this node.
	Class string
	// N is the number of training rows that reached the node.
	N int
	// Errors is the number of those rows not of the majority class.
	Errors int

	// Feature is the split attribute (internal nodes).
	Feature int
	// Kind is the split attribute's kind.
	Kind FeatureKind
	// Threshold splits numeric features: x[Feature] <= Threshold goes Left.
	Threshold float64
	// Left and Right are the numeric children.
	Left, Right *Node
	// Children maps categorical values to subtrees.
	Children map[float64]*Node
}

// Model is a trained tree.
type Model struct {
	Root    *Node
	Classes []string
	opts    Options
}

// Train fits a tree from a table with a String class column and a Vector
// features column.
func Train(db *engine.DB, table *engine.Table, classCol, featCol string, opts Options) (*Model, error) {
	schema := table.Schema()
	ci, fi := schema.Index(classCol), schema.Index(featCol)
	if ci < 0 || fi < 0 {
		return nil, fmt.Errorf("%w: %q or %q", engine.ErrNoColumn, classCol, featCol)
	}
	if schema[ci].Kind != engine.String || schema[fi].Kind != engine.Vector {
		return nil, fmt.Errorf("dtree: need (%s, %s) columns", engine.String, engine.Vector)
	}
	// Stage the training set out of the engine in one parallel scan.
	nSegs := len(table.Segments())
	perSegX := make([][][]float64, nSegs)
	perSegY := make([][]string, nSegs)
	err := db.ForEachSegment(table, func(seg int, row engine.Row) error {
		perSegX[seg] = append(perSegX[seg], row.Vector(fi))
		perSegY[seg] = append(perSegY[seg], row.Str(ci))
		return nil
	})
	if err != nil {
		return nil, err
	}
	var x [][]float64
	var y []string
	for s := range perSegX {
		x = append(x, perSegX[s]...)
		y = append(y, perSegY[s]...)
	}
	return Build(x, y, opts)
}

// Build fits a tree from in-memory data.
func Build(x [][]float64, y []string, opts Options) (*Model, error) {
	opts.defaults()
	if len(x) == 0 {
		return nil, ErrNoData
	}
	if len(x) != len(y) {
		return nil, fmt.Errorf("dtree: %d rows vs %d labels", len(x), len(y))
	}
	nf := len(x[0])
	for i := range x {
		if len(x[i]) != nf {
			return nil, fmt.Errorf("dtree: row %d has %d features, expected %d", i, len(x[i]), nf)
		}
	}
	if opts.FeatureKinds == nil {
		opts.FeatureKinds = make([]FeatureKind, nf)
	}
	if len(opts.FeatureKinds) != nf {
		return nil, fmt.Errorf("dtree: %d FeatureKinds for %d features", len(opts.FeatureKinds), nf)
	}
	classSet := map[string]bool{}
	for _, c := range y {
		classSet[c] = true
	}
	m := &Model{opts: opts}
	for c := range classSet {
		m.Classes = append(m.Classes, c)
	}
	sort.Strings(m.Classes)
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	m.Root = m.grow(x, y, idx, 0)
	if !opts.NoPrune {
		m.prune(m.Root)
	}
	return m, nil
}

// entropy computes the Shannon entropy of the label distribution of idx.
func entropy(y []string, idx []int) float64 {
	counts := map[string]int{}
	for _, i := range idx {
		counts[y[i]]++
	}
	n := float64(len(idx))
	var h float64
	for _, c := range counts {
		p := float64(c) / n
		h -= p * math.Log2(p)
	}
	return h
}

func majority(y []string, idx []int) (string, int) {
	counts := map[string]int{}
	for _, i := range idx {
		counts[y[i]]++
	}
	best, bestC := -1, ""
	// Deterministic tie-break by class name.
	keys := make([]string, 0, len(counts))
	for c := range counts {
		keys = append(keys, c)
	}
	sort.Strings(keys)
	for _, c := range keys {
		if counts[c] > best {
			best, bestC = counts[c], c
		}
	}
	return bestC, len(idx) - best
}

type split struct {
	feature   int
	kind      FeatureKind
	threshold float64
	gainRatio float64
	gain      float64
	parts     map[float64][]int // categorical partitions
	left      []int             // numeric partitions
	right     []int
}

// grow recursively builds the tree over the row subset idx.
func (m *Model) grow(x [][]float64, y []string, idx []int, depth int) *Node {
	class, errs := majority(y, idx)
	node := &Node{Leaf: true, Class: class, N: len(idx), Errors: errs}
	// depth counts edges from the root; MaxDepth bounds nodes on a path,
	// so a node at depth d may split only while d+1 < MaxDepth.
	if errs == 0 || len(idx) < m.opts.MinRows || depth+1 >= m.opts.MaxDepth {
		return node
	}
	best := m.bestSplit(x, y, idx)
	if best == nil {
		return node
	}
	node.Leaf = false
	node.Feature = best.feature
	node.Kind = best.kind
	if best.kind == Numeric {
		node.Threshold = best.threshold
		node.Left = m.grow(x, y, best.left, depth+1)
		node.Right = m.grow(x, y, best.right, depth+1)
	} else {
		node.Children = map[float64]*Node{}
		for v, part := range best.parts {
			node.Children[v] = m.grow(x, y, part, depth+1)
		}
	}
	return node
}

// bestSplit evaluates candidate splits and applies C4.5's selection rule:
// among candidates whose information gain is at least the mean candidate
// gain (the guard against high-ratio sliver splits), pick the one with the
// highest gain ratio. Returns nil when no admissible split exists.
func (m *Model) bestSplit(x [][]float64, y []string, idx []int) *split {
	baseH := entropy(y, idx)
	n := float64(len(idx))
	var cands []*split
	for f := range m.opts.FeatureKinds {
		var cand *split
		if m.opts.FeatureKinds[f] == Categorical {
			cand = categoricalSplit(x, y, idx, f, baseH, n, m.opts.MinLeaf)
		} else {
			cand = numericSplit(x, y, idx, f, baseH, n, m.opts.MinLeaf)
		}
		if cand != nil {
			cands = append(cands, cand)
		}
	}
	if len(cands) == 0 {
		return nil
	}
	var meanGain float64
	for _, c := range cands {
		meanGain += c.gain
	}
	meanGain /= float64(len(cands))
	var best *split
	for _, c := range cands {
		if c.gain+1e-12 < meanGain {
			continue
		}
		if best == nil || c.gainRatio > best.gainRatio {
			best = c
		}
	}
	return best
}

func categoricalSplit(x [][]float64, y []string, idx []int, f int, baseH, n float64, minLeaf int) *split {
	parts := map[float64][]int{}
	for _, i := range idx {
		v := x[i][f]
		parts[v] = append(parts[v], i)
	}
	if len(parts) < 2 {
		return nil
	}
	// C4.5 requires at least two branches with minLeaf cases each.
	adequate := 0
	for _, part := range parts {
		if len(part) >= minLeaf {
			adequate++
		}
	}
	if adequate < 2 {
		return nil
	}
	var cond, splitInfo float64
	for _, part := range parts {
		w := float64(len(part)) / n
		cond += w * entropy(y, part)
		splitInfo -= w * math.Log2(w)
	}
	gain := baseH - cond
	if gain <= 1e-12 || splitInfo <= 1e-12 {
		return nil
	}
	return &split{feature: f, kind: Categorical, gain: gain, gainRatio: gain / splitInfo, parts: parts}
}

func numericSplit(x [][]float64, y []string, idx []int, f int, baseH, n float64, minLeaf int) *split {
	ordered := append([]int(nil), idx...)
	sort.Slice(ordered, func(a, b int) bool { return x[ordered[a]][f] < x[ordered[b]][f] })
	// Running class counts left of the cut.
	leftCounts := map[string]int{}
	rightCounts := map[string]int{}
	for _, i := range ordered {
		rightCounts[y[i]]++
	}
	var best *split
	for cut := 1; cut < len(ordered); cut++ {
		prev := ordered[cut-1]
		leftCounts[y[prev]]++
		rightCounts[y[prev]]--
		if cut < minLeaf || len(ordered)-cut < minLeaf {
			continue // each branch must receive at least minLeaf rows
		}
		if x[ordered[cut]][f] == x[prev][f] {
			continue // not a boundary between distinct values
		}
		nl, nr := float64(cut), n-float64(cut)
		hl := countEntropy(leftCounts, nl)
		hr := countEntropy(rightCounts, nr)
		gain := baseH - (nl/n)*hl - (nr/n)*hr
		if gain <= 1e-12 {
			continue
		}
		wl, wr := nl/n, nr/n
		splitInfo := -wl*math.Log2(wl) - wr*math.Log2(wr)
		if splitInfo <= 1e-12 {
			continue
		}
		gr := gain / splitInfo
		if best == nil || gr > best.gainRatio {
			threshold := (x[prev][f] + x[ordered[cut]][f]) / 2
			best = &split{feature: f, kind: Numeric, threshold: threshold, gain: gain, gainRatio: gr,
				left: append([]int(nil), ordered[:cut]...), right: append([]int(nil), ordered[cut:]...)}
		}
	}
	return best
}

func countEntropy(counts map[string]int, n float64) float64 {
	if n == 0 {
		return 0
	}
	var h float64
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / n
		h -= p * math.Log2(p)
	}
	return h
}

// pessimisticErrors is C4.5's upper confidence bound on the error count of
// a leaf covering n rows with e observed errors.
func (m *Model) pessimisticErrors(e, n int) float64 {
	if n == 0 {
		return 0
	}
	z := stats.NormalQuantile(1 - m.opts.ConfidenceFactor)
	f := float64(e) / float64(n)
	nn := float64(n)
	ucf := (f + z*z/(2*nn) + z*math.Sqrt(f*(1-f)/nn+z*z/(4*nn*nn))) / (1 + z*z/nn)
	return ucf * nn
}

// prune applies bottom-up pessimistic pruning: replace a subtree with a
// leaf when the leaf's estimated errors do not exceed the subtree's.
func (m *Model) prune(node *Node) float64 {
	if node.Leaf {
		return m.pessimisticErrors(node.Errors, node.N)
	}
	var subtree float64
	if node.Kind == Numeric {
		subtree = m.prune(node.Left) + m.prune(node.Right)
	} else {
		for _, child := range node.Children {
			subtree += m.prune(child)
		}
	}
	asLeaf := m.pessimisticErrors(node.Errors, node.N)
	if asLeaf <= subtree+1e-12 {
		node.Leaf = true
		node.Left, node.Right, node.Children = nil, nil, nil
		return asLeaf
	}
	return subtree
}

// Classify routes x down the tree. Unseen categorical values fall back to
// the node's majority class.
func (m *Model) Classify(x []float64) (string, error) {
	node := m.Root
	for !node.Leaf {
		if node.Feature >= len(x) {
			return "", fmt.Errorf("dtree: input has %d features, split needs %d", len(x), node.Feature+1)
		}
		if node.Kind == Numeric {
			if x[node.Feature] <= node.Threshold {
				node = node.Left
			} else {
				node = node.Right
			}
		} else {
			child, ok := node.Children[x[node.Feature]]
			if !ok {
				return node.Class, nil
			}
			node = child
		}
	}
	return node.Class, nil
}

// Size returns the number of nodes in the tree.
func (m *Model) Size() int { return countNodes(m.Root) }

func countNodes(n *Node) int {
	if n == nil {
		return 0
	}
	if n.Leaf {
		return 1
	}
	total := 1
	if n.Kind == Numeric {
		total += countNodes(n.Left) + countNodes(n.Right)
	} else {
		for _, c := range n.Children {
			total += countNodes(c)
		}
	}
	return total
}

// Depth returns the maximum depth of the tree (a lone leaf has depth 1).
func (m *Model) Depth() int { return depthOf(m.Root) }

func depthOf(n *Node) int {
	if n == nil {
		return 0
	}
	if n.Leaf {
		return 1
	}
	best := 0
	if n.Kind == Numeric {
		best = max(depthOf(n.Left), depthOf(n.Right))
	} else {
		for _, c := range n.Children {
			if d := depthOf(c); d > best {
				best = d
			}
		}
	}
	return best + 1
}
