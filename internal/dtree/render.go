package dtree

import (
	"fmt"
	"sort"
	"strings"
)

// String renders the tree as indented C4.5-style rules, e.g.
//
//	f0 <= 0.5:
//	  f1 <= 2: a (12/0)
//	  f1 > 2: b (9/1)
//	f0 > 0.5: c (30/2)
//
// Leaf annotations are (rows/errors) from training.
func (m *Model) String() string {
	var b strings.Builder
	renderNode(&b, m.Root, 0)
	return b.String()
}

func renderNode(b *strings.Builder, n *Node, depth int) {
	indent := strings.Repeat("  ", depth)
	if n.Leaf {
		fmt.Fprintf(b, "%s%s (%d/%d)\n", indent, n.Class, n.N, n.Errors)
		return
	}
	if n.Kind == Numeric {
		fmt.Fprintf(b, "%sf%d <= %g:\n", indent, n.Feature, n.Threshold)
		renderNode(b, n.Left, depth+1)
		fmt.Fprintf(b, "%sf%d > %g:\n", indent, n.Feature, n.Threshold)
		renderNode(b, n.Right, depth+1)
		return
	}
	vals := make([]float64, 0, len(n.Children))
	for v := range n.Children {
		vals = append(vals, v)
	}
	sort.Float64s(vals)
	for _, v := range vals {
		fmt.Fprintf(b, "%sf%d = %g:\n", indent, n.Feature, v)
		renderNode(b, n.Children[v], depth+1)
	}
}

// Rule is one root-to-leaf decision path.
type Rule struct {
	// Conditions are human-readable conjuncts, e.g. "f0 <= 0.5".
	Conditions []string
	// Class is the leaf's prediction.
	Class string
	// N and Errors are the leaf's training row and error counts.
	N, Errors int
}

// Rules flattens the tree into its decision rules, in left-to-right leaf
// order — the rule-set view C4.5 popularized.
func (m *Model) Rules() []Rule {
	var out []Rule
	var walk func(n *Node, conds []string)
	walk = func(n *Node, conds []string) {
		if n.Leaf {
			out = append(out, Rule{
				Conditions: append([]string(nil), conds...),
				Class:      n.Class, N: n.N, Errors: n.Errors,
			})
			return
		}
		if n.Kind == Numeric {
			walk(n.Left, append(conds, fmt.Sprintf("f%d <= %g", n.Feature, n.Threshold)))
			walk(n.Right, append(conds, fmt.Sprintf("f%d > %g", n.Feature, n.Threshold)))
			return
		}
		vals := make([]float64, 0, len(n.Children))
		for v := range n.Children {
			vals = append(vals, v)
		}
		sort.Float64s(vals)
		for _, v := range vals {
			walk(n.Children[v], append(conds, fmt.Sprintf("f%d = %g", n.Feature, v)))
		}
	}
	walk(m.Root, nil)
	return out
}
