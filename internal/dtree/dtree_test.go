package dtree

import (
	"errors"
	"math/rand"
	"testing"

	"madlib/internal/engine"
)

func TestTwoLevelNumericRule(t *testing.T) {
	// y = pos iff f0 <= 0.5 and f1 > 0.5 — needs two levels of numeric
	// splits, each with positive information gain (unlike pure XOR, which
	// greedy entropy splitting provably cannot start on).
	var x [][]float64
	var y []string
	for i := 0; i < 200; i++ {
		a, b := float64(i%2), float64((i/2)%2)
		x = append(x, []float64{a, b})
		if a == 0 && b == 1 {
			y = append(y, "pos")
		} else {
			y = append(y, "neg")
		}
	}
	m, err := Build(x, y, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		got, err := m.Classify(x[i])
		if err != nil {
			t.Fatal(err)
		}
		if got != y[i] {
			t.Fatalf("Classify(%v) = %q, want %q", x[i], got, y[i])
		}
	}
	if m.Depth() < 2 {
		t.Fatalf("rule needs two levels, got depth %d", m.Depth())
	}
}

func TestPureXORHasNoGreedySplit(t *testing.T) {
	// Balanced XOR gives every single-feature split exactly zero gain, so
	// a greedy C4.5 must return a single leaf — the textbook limitation.
	var x [][]float64
	var y []string
	for i := 0; i < 200; i++ {
		a, b := float64(i%2), float64((i/2)%2)
		x = append(x, []float64{a, b})
		if a != b {
			y = append(y, "pos")
		} else {
			y = append(y, "neg")
		}
	}
	m, err := Build(x, y, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Root.Leaf {
		t.Fatalf("greedy split on balanced XOR should be impossible, got %+v", m.Root)
	}
}

func TestCategoricalSplit(t *testing.T) {
	// Class is fully determined by a 3-way categorical attribute.
	var x [][]float64
	var y []string
	labels := map[float64]string{0: "a", 1: "b", 2: "c"}
	for i := 0; i < 90; i++ {
		v := float64(i % 3)
		x = append(x, []float64{v, rand.New(rand.NewSource(int64(i))).Float64()})
		y = append(y, labels[v])
	}
	m, err := Build(x, y, Options{FeatureKinds: []FeatureKind{Categorical, Numeric}})
	if err != nil {
		t.Fatal(err)
	}
	for v, want := range labels {
		got, err := m.Classify([]float64{v, 0.5})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("Classify(cat=%v) = %q, want %q", v, got, want)
		}
	}
	// Root should split on the categorical feature.
	if m.Root.Leaf || m.Root.Feature != 0 || m.Root.Kind != Categorical {
		t.Fatalf("root = %+v", m.Root)
	}
	// Unseen category falls back to majority.
	if _, err := m.Classify([]float64{99, 0.5}); err != nil {
		t.Fatal(err)
	}
}

func TestPruningShrinksNoiseTree(t *testing.T) {
	// Labels are pure noise: an unpruned tree overfits wildly, pruning
	// should collapse it substantially.
	rng := rand.New(rand.NewSource(5))
	var x [][]float64
	var y []string
	for i := 0; i < 400; i++ {
		x = append(x, []float64{rng.Float64(), rng.Float64(), rng.Float64()})
		if rng.Float64() < 0.5 {
			y = append(y, "a")
		} else {
			y = append(y, "b")
		}
	}
	unpruned, err := Build(x, y, Options{NoPrune: true})
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := Build(x, y, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Size() >= unpruned.Size() {
		t.Fatalf("pruned %d nodes vs unpruned %d", pruned.Size(), unpruned.Size())
	}
}

func TestGeneralization(t *testing.T) {
	// Learn y = (f0 > 0.5) with noisy irrelevant features; holdout accuracy
	// should be high.
	rng := rand.New(rand.NewSource(7))
	gen := func(n int) ([][]float64, []string) {
		var x [][]float64
		var y []string
		for i := 0; i < n; i++ {
			row := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
			x = append(x, row)
			if row[0] > 0.5 {
				y = append(y, "hi")
			} else {
				y = append(y, "lo")
			}
		}
		return x, y
	}
	xTrain, yTrain := gen(500)
	xTest, yTest := gen(300)
	m, err := Build(xTrain, yTrain, Options{})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range xTest {
		got, err := m.Classify(xTest[i])
		if err != nil {
			t.Fatal(err)
		}
		if got == yTest[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(xTest)); acc < 0.95 {
		t.Fatalf("holdout accuracy = %v", acc)
	}
}

func TestMaxDepth(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var x [][]float64
	var y []string
	for i := 0; i < 300; i++ {
		x = append(x, []float64{rng.Float64(), rng.Float64()})
		if rng.Float64() < 0.5 {
			y = append(y, "a")
		} else {
			y = append(y, "b")
		}
	}
	m, err := Build(x, y, Options{MaxDepth: 3, NoPrune: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.Depth() > 3 {
		t.Fatalf("depth = %d, limit 3", m.Depth())
	}
}

func TestPureLeafStopsEarly(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}}
	y := []string{"same", "same", "same"}
	m, err := Build(x, y, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Root.Leaf || m.Root.Class != "same" || m.Size() != 1 {
		t.Fatalf("pure data should give a single leaf: %+v", m.Root)
	}
}

func TestTrainFromEngine(t *testing.T) {
	db := engine.Open(3)
	tbl, _ := db.CreateTable("d", engine.Schema{
		{Name: "class", Kind: engine.String},
		{Name: "features", Kind: engine.Vector},
	})
	for i := 0; i < 100; i++ {
		v := float64(i) / 100
		class := "lo"
		if v > 0.6 {
			class = "hi"
		}
		if err := tbl.Insert(class, []float64{v}); err != nil {
			t.Fatal(err)
		}
	}
	m, err := Train(db, tbl, "class", "features", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := m.Classify([]float64{0.9}); got != "hi" {
		t.Fatalf("Classify(0.9) = %q", got)
	}
	if got, _ := m.Classify([]float64{0.1}); got != "lo" {
		t.Fatalf("Classify(0.1) = %q", got)
	}
}

func TestErrors(t *testing.T) {
	if _, err := Build(nil, nil, Options{}); !errors.Is(err, ErrNoData) {
		t.Fatalf("want ErrNoData, got %v", err)
	}
	if _, err := Build([][]float64{{1}}, []string{"a", "b"}, Options{}); err == nil {
		t.Fatal("row/label mismatch should fail")
	}
	if _, err := Build([][]float64{{1}, {1, 2}}, []string{"a", "b"}, Options{}); err == nil {
		t.Fatal("ragged rows should fail")
	}
	if _, err := Build([][]float64{{1}}, []string{"a"}, Options{FeatureKinds: []FeatureKind{Numeric, Numeric}}); err == nil {
		t.Fatal("FeatureKinds arity mismatch should fail")
	}
	db := engine.Open(1)
	tbl, _ := db.CreateTable("d", engine.Schema{{Name: "class", Kind: engine.String}, {Name: "features", Kind: engine.Vector}})
	if _, err := Train(db, tbl, "zz", "features", Options{}); err == nil {
		t.Fatal("missing column should fail")
	}
}

func TestClassifyShortInput(t *testing.T) {
	var x [][]float64
	var y []string
	for i := 0; i < 50; i++ {
		x = append(x, []float64{float64(i), float64(50 - i)})
		if i < 25 {
			y = append(y, "a")
		} else {
			y = append(y, "b")
		}
	}
	m, err := Build(x, y, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Root.Leaf {
		t.Fatal("expected a split")
	}
	if _, err := m.Classify([]float64{}); err == nil {
		t.Fatal("short input should error")
	}
}
