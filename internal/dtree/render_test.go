package dtree

import (
	"strings"
	"testing"
)

func buildThresholdTree(t *testing.T) *Model {
	t.Helper()
	var x [][]float64
	var y []string
	for i := 0; i < 100; i++ {
		v := float64(i)
		class := "lo"
		if v > 49.5 {
			class = "hi"
		}
		x = append(x, []float64{v})
		y = append(y, class)
	}
	m, err := Build(x, y, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestStringRendering(t *testing.T) {
	m := buildThresholdTree(t)
	s := m.String()
	if !strings.Contains(s, "f0 <= ") || !strings.Contains(s, "f0 > ") {
		t.Fatalf("rendering missing split:\n%s", s)
	}
	if !strings.Contains(s, "lo (") || !strings.Contains(s, "hi (") {
		t.Fatalf("rendering missing leaves:\n%s", s)
	}
}

func TestRulesCoverAllLeaves(t *testing.T) {
	m := buildThresholdTree(t)
	rules := m.Rules()
	if len(rules) < 2 {
		t.Fatalf("rules = %v", rules)
	}
	totalRows := 0
	classes := map[string]bool{}
	for _, r := range rules {
		totalRows += r.N
		classes[r.Class] = true
		if len(r.Conditions) == 0 {
			t.Fatalf("internal split produced unconditioned rule: %+v", r)
		}
	}
	if totalRows != 100 {
		t.Fatalf("rules cover %d rows", totalRows)
	}
	if !classes["lo"] || !classes["hi"] {
		t.Fatalf("rule classes = %v", classes)
	}
}

func TestRulesCategorical(t *testing.T) {
	var x [][]float64
	var y []string
	labels := map[float64]string{0: "a", 1: "b", 2: "c"}
	for i := 0; i < 60; i++ {
		v := float64(i % 3)
		x = append(x, []float64{v})
		y = append(y, labels[v])
	}
	m, err := Build(x, y, Options{FeatureKinds: []FeatureKind{Categorical}})
	if err != nil {
		t.Fatal(err)
	}
	rules := m.Rules()
	if len(rules) != 3 {
		t.Fatalf("expected 3 categorical rules, got %v", rules)
	}
	for _, r := range rules {
		if !strings.Contains(r.Conditions[0], "f0 = ") {
			t.Fatalf("categorical condition wrong: %v", r.Conditions)
		}
		if r.Errors != 0 {
			t.Fatalf("pure split has errors: %+v", r)
		}
	}
	if s := m.String(); !strings.Contains(s, "f0 = 1:") {
		t.Fatalf("categorical rendering wrong:\n%s", s)
	}
}

func TestSingleLeafRendering(t *testing.T) {
	m, err := Build([][]float64{{1}, {2}}, []string{"only", "only"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.String(); !strings.Contains(got, "only (2/0)") {
		t.Fatalf("leaf rendering: %q", got)
	}
	rules := m.Rules()
	if len(rules) != 1 || len(rules[0].Conditions) != 0 {
		t.Fatalf("single-leaf rules: %+v", rules)
	}
}
