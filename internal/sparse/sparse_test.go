package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"madlib/internal/array"
)

func TestFromDenseRoundtrip(t *testing.T) {
	tests := [][]float64{
		nil,
		{0},
		{1, 1, 1},
		{0, 0, 5, 5, 0},
		{1, 2, 3, 4},
		{0, 0, 0, 0, 0, 0, 7},
	}
	for _, in := range tests {
		v := FromDense(in)
		out := v.Dense()
		if len(out) != len(in) {
			t.Fatalf("roundtrip length %d != %d", len(out), len(in))
		}
		for i := range in {
			if out[i] != in[i] {
				t.Fatalf("roundtrip mismatch at %d: %v != %v", i, out[i], in[i])
			}
		}
	}
}

func TestCompression(t *testing.T) {
	v := FromDense([]float64{0, 0, 0, 5, 5, 0})
	if v.RunCount() != 3 {
		t.Fatalf("RunCount = %d, want 3", v.RunCount())
	}
	if v.Len() != 6 {
		t.Fatalf("Len = %d, want 6", v.Len())
	}
	if v.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2", v.NNZ())
	}
}

func TestAt(t *testing.T) {
	v := FromDense([]float64{0, 0, 5, 5, 9})
	for i, want := range []float64{0, 0, 5, 5, 9} {
		if got := v.At(i); got != want {
			t.Fatalf("At(%d) = %v, want %v", i, got, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range index")
		}
	}()
	v.At(5)
}

func TestRepeat(t *testing.T) {
	v := Repeat(3, 4)
	if v.Len() != 4 || v.RunCount() != 1 || v.Sum() != 12 {
		t.Fatalf("Repeat wrong: %v", v)
	}
	if Repeat(1, 0).Len() != 0 {
		t.Fatal("Repeat(x,0) should be empty")
	}
}

func TestDotMatchesDense(t *testing.T) {
	a := []float64{0, 0, 2, 2, 0, 1}
	b := []float64{1, 1, 0, 3, 3, 3}
	got, err := Dot(FromDense(a), FromDense(b))
	if err != nil {
		t.Fatal(err)
	}
	if want := array.Dot(a, b); got != want {
		t.Fatalf("Dot = %v, want %v", got, want)
	}
}

func TestDotDimensionMismatch(t *testing.T) {
	if _, err := Dot(Repeat(1, 3), Repeat(1, 4)); err != ErrDimension {
		t.Fatalf("want ErrDimension, got %v", err)
	}
}

func TestAddMul(t *testing.T) {
	a := FromDense([]float64{0, 0, 1, 1})
	b := FromDense([]float64{2, 2, 2, 2})
	sum, err := Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	wantSum := []float64{2, 2, 3, 3}
	for i, w := range wantSum {
		if sum.At(i) != w {
			t.Fatalf("Add at %d = %v, want %v", i, sum.At(i), w)
		}
	}
	if sum.RunCount() != 2 {
		t.Fatalf("Add result should stay compressed, RunCount = %d", sum.RunCount())
	}
	prod, err := Mul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	wantProd := []float64{0, 0, 2, 2}
	for i, w := range wantProd {
		if prod.At(i) != w {
			t.Fatalf("Mul at %d = %v, want %v", i, prod.At(i), w)
		}
	}
}

func TestScale(t *testing.T) {
	v := FromDense([]float64{1, 2, 2})
	v.Scale(2)
	if v.At(0) != 2 || v.At(1) != 4 || v.At(2) != 4 {
		t.Fatalf("Scale wrong: %v", v.Dense())
	}
	v.Scale(0)
	if v.RunCount() != 1 || v.Sum() != 0 {
		t.Fatalf("Scale(0) should collapse to one zero run: %d runs", v.RunCount())
	}
}

func TestNorms(t *testing.T) {
	v := FromDense([]float64{3, 0, -4})
	if got := v.Norm2(); got != 5 {
		t.Fatalf("Norm2 = %v", got)
	}
	if got := v.Norm1(); got != 7 {
		t.Fatalf("Norm1 = %v", got)
	}
}

func TestConcat(t *testing.T) {
	a := FromDense([]float64{1, 1})
	b := FromDense([]float64{1, 2})
	a.Concat(b)
	want := []float64{1, 1, 1, 2}
	for i, w := range want {
		if a.At(i) != w {
			t.Fatalf("Concat at %d = %v", i, a.At(i))
		}
	}
	if a.RunCount() != 2 {
		t.Fatalf("Concat should merge boundary runs, RunCount = %d", a.RunCount())
	}
}

func TestStringParseRoundtrip(t *testing.T) {
	v := FromDense([]float64{0, 0, 0, 5, 5, 0})
	s := v.String()
	if s != "{3,2,1}:{0,5,0}" {
		t.Fatalf("String = %q", s)
	}
	back, err := Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != v.Len() {
		t.Fatalf("Parse length %d != %d", back.Len(), v.Len())
	}
	for i := 0; i < v.Len(); i++ {
		if back.At(i) != v.At(i) {
			t.Fatalf("Parse mismatch at %d", i)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{"", "{1}", "{1}:{2,3}", "{a}:{1}", "{0}:{1}", "1,2:3,4", "{1:{2}"}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Fatalf("Parse(%q) should fail", s)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromDense([]float64{1, 1, 2})
	b := a.Clone()
	b.Scale(10)
	if a.At(0) != 1 {
		t.Fatal("Clone aliases runs")
	}
}

func TestNaNRunsCompress(t *testing.T) {
	n := math.NaN()
	v := FromDense([]float64{n, n, n})
	if v.RunCount() != 1 {
		t.Fatalf("NaN runs should compress, got %d runs", v.RunCount())
	}
	if !math.IsNaN(v.At(1)) {
		t.Fatal("NaN lost")
	}
}

// Property: RLE roundtrip is exact for vectors drawn from a small alphabet
// (which produces interesting run structure).
func TestRoundtripProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		dense := make([]float64, int(n))
		for i := range dense {
			dense[i] = float64(rng.Intn(3)) // alphabet {0,1,2} → long runs
		}
		v := FromDense(dense)
		out := v.Dense()
		if len(out) != len(dense) {
			return false
		}
		for i := range dense {
			if out[i] != dense[i] {
				return false
			}
		}
		return v.RunCount() <= len(dense) || len(dense) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: sparse Dot equals dense Dot.
func TestDotEquivalenceProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		a := make([]float64, int(n))
		b := make([]float64, int(n))
		for i := range a {
			a[i] = float64(rng.Intn(4))
			b[i] = float64(rng.Intn(4))
		}
		got, err := Dot(FromDense(a), FromDense(b))
		if err != nil {
			return false
		}
		want := array.Dot(a, b)
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Add is commutative.
func TestAddCommutativeProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		a := make([]float64, int(n))
		b := make([]float64, int(n))
		for i := range a {
			a[i] = float64(rng.Intn(3))
			b[i] = float64(rng.Intn(3))
		}
		ab, err1 := Add(FromDense(a), FromDense(b))
		ba, err2 := Add(FromDense(b), FromDense(a))
		if err1 != nil || err2 != nil {
			return false
		}
		for i := 0; i < ab.Len(); i++ {
			if ab.At(i) != ba.At(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSparseDotRLE(b *testing.B) {
	// 10k elements, heavily compressed (1% non-zero clusters).
	dense := make([]float64, 10000)
	for i := 0; i < len(dense); i += 200 {
		dense[i] = 1
	}
	v := FromDense(dense)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Dot(v, v); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDenseDotSameData(b *testing.B) {
	dense := make([]float64, 10000)
	for i := 0; i < len(dense); i += 200 {
		dense[i] = 1
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		array.Dot(dense, dense)
	}
}
