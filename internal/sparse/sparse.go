// Package sparse implements a run-length-encoded sparse vector, mirroring
// the custom C sparse-vector library the paper describes in §3.2: "We chose
// to write our own sparse matrix library in C for MADlib, which implements a
// run-length encoding scheme."
//
// A Vector stores consecutive equal values as (value, count) runs. Text
// feature vectors and indicator encodings — the workloads that motivated the
// original library — compress extremely well under this scheme because they
// are dominated by long runs of zeros.
package sparse

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"madlib/internal/core"
)

func init() {
	core.RegisterMethod(core.MethodInfo{Name: "svec", Title: "Sparse Vectors", Category: core.Support})
}

// ErrDimension is returned when two vectors that must agree in length do not.
var ErrDimension = errors.New("sparse: dimension mismatch")

// run is a single (value, count) pair of the encoding.
type run struct {
	value float64
	count int
}

// Vector is a run-length-encoded vector of float64.
// The zero value is an empty (length-0) vector ready to use.
type Vector struct {
	runs   []run
	length int
}

// FromDense builds a Vector from a dense slice, coalescing consecutive
// equal values into runs. NaN values are allowed and compare equal to each
// other for run-building purposes (bitwise intent: repeated NaN compresses).
func FromDense(x []float64) *Vector {
	v := &Vector{}
	for _, val := range x {
		v.Append(val, 1)
	}
	return v
}

// New returns an empty vector.
func New() *Vector { return &Vector{} }

// Repeat returns a vector holding value repeated n times (a single run).
func Repeat(value float64, n int) *Vector {
	if n <= 0 {
		return &Vector{}
	}
	return &Vector{runs: []run{{value, n}}, length: n}
}

func sameValue(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return a == b
}

// Append adds count copies of value to the end of the vector, merging with
// the final run when the values match.
func (v *Vector) Append(value float64, count int) {
	if count <= 0 {
		return
	}
	v.length += count
	if n := len(v.runs); n > 0 && sameValue(v.runs[n-1].value, value) {
		v.runs[n-1].count += count
		return
	}
	v.runs = append(v.runs, run{value, count})
}

// Len returns the logical (dense) length of the vector.
func (v *Vector) Len() int { return v.length }

// RunCount returns the number of runs in the encoding; the compression ratio
// is Len()/RunCount() for non-empty vectors.
func (v *Vector) RunCount() int { return len(v.runs) }

// At returns the i-th logical element. It panics if i is out of range.
func (v *Vector) At(i int) float64 {
	if i < 0 || i >= v.length {
		panic(fmt.Sprintf("sparse: index %d out of range [0,%d)", i, v.length))
	}
	for _, r := range v.runs {
		if i < r.count {
			return r.value
		}
		i -= r.count
	}
	panic("sparse: corrupt run-length encoding")
}

// Dense materializes the vector into a new dense slice.
func (v *Vector) Dense() []float64 {
	out := make([]float64, 0, v.length)
	for _, r := range v.runs {
		for i := 0; i < r.count; i++ {
			out = append(out, r.value)
		}
	}
	return out
}

// Clone returns a deep copy.
func (v *Vector) Clone() *Vector {
	return &Vector{runs: append([]run(nil), v.runs...), length: v.length}
}

// NNZ returns the number of logically non-zero elements.
func (v *Vector) NNZ() int {
	n := 0
	for _, r := range v.runs {
		if r.value != 0 {
			n += r.count
		}
	}
	return n
}

// Scale multiplies every element by alpha in place. Scaling by zero
// collapses the vector to a single zero run.
func (v *Vector) Scale(alpha float64) {
	if alpha == 0 && v.length > 0 {
		v.runs = []run{{0, v.length}}
		return
	}
	for i := range v.runs {
		v.runs[i].value *= alpha
	}
	v.normalize()
}

// normalize merges adjacent runs with equal values (which can appear after
// element-wise operations).
func (v *Vector) normalize() {
	if len(v.runs) < 2 {
		return
	}
	out := v.runs[:1]
	for _, r := range v.runs[1:] {
		if sameValue(out[len(out)-1].value, r.value) {
			out[len(out)-1].count += r.count
		} else {
			out = append(out, r)
		}
	}
	v.runs = out
}

// zip walks two equal-length vectors run-by-run, invoking f on each maximal
// stretch where both inputs are constant. It is the workhorse for all binary
// operations and runs in O(runs(a)+runs(b)) rather than O(n).
func zip(a, b *Vector, f func(av, bv float64, count int)) error {
	if a.length != b.length {
		return ErrDimension
	}
	ai, bi := 0, 0
	arem, brem := 0, 0
	if len(a.runs) > 0 {
		arem = a.runs[0].count
	}
	if len(b.runs) > 0 {
		brem = b.runs[0].count
	}
	for ai < len(a.runs) && bi < len(b.runs) {
		step := arem
		if brem < step {
			step = brem
		}
		f(a.runs[ai].value, b.runs[bi].value, step)
		arem -= step
		brem -= step
		if arem == 0 {
			ai++
			if ai < len(a.runs) {
				arem = a.runs[ai].count
			}
		}
		if brem == 0 {
			bi++
			if bi < len(b.runs) {
				brem = b.runs[bi].count
			}
		}
	}
	return nil
}

// Dot returns the inner product of two equal-length vectors, computed
// run-by-run in O(runs) time.
func Dot(a, b *Vector) (float64, error) {
	var s float64
	err := zip(a, b, func(av, bv float64, count int) {
		s += av * bv * float64(count)
	})
	return s, err
}

// Add returns a+b as a new RLE vector.
func Add(a, b *Vector) (*Vector, error) {
	out := &Vector{}
	err := zip(a, b, func(av, bv float64, count int) {
		out.Append(av+bv, count)
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Mul returns the element-wise product of a and b as a new RLE vector.
func Mul(a, b *Vector) (*Vector, error) {
	out := &Vector{}
	err := zip(a, b, func(av, bv float64, count int) {
		out.Append(av*bv, count)
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Norm2 returns the Euclidean norm.
func (v *Vector) Norm2() float64 {
	var s float64
	for _, r := range v.runs {
		s += r.value * r.value * float64(r.count)
	}
	return math.Sqrt(s)
}

// Norm1 returns the L1 norm.
func (v *Vector) Norm1() float64 {
	var s float64
	for _, r := range v.runs {
		s += math.Abs(r.value) * float64(r.count)
	}
	return s
}

// Sum returns the sum of all elements.
func (v *Vector) Sum() float64 {
	var s float64
	for _, r := range v.runs {
		s += r.value * float64(r.count)
	}
	return s
}

// Concat appends other to v in place.
func (v *Vector) Concat(other *Vector) {
	for _, r := range other.runs {
		v.Append(r.value, r.count)
	}
}

// String renders the vector in MADlib's svec text notation, e.g.
// "{3,2,1}:{0,5,0}" meaning 3 zeros, 2 fives, 1 zero.
func (v *Vector) String() string {
	var counts, values []string
	for _, r := range v.runs {
		counts = append(counts, fmt.Sprintf("%d", r.count))
		values = append(values, trimFloat(r.value))
	}
	return "{" + strings.Join(counts, ",") + "}:{" + strings.Join(values, ",") + "}"
}

func trimFloat(f float64) string {
	s := fmt.Sprintf("%g", f)
	return s
}

// Parse parses MADlib svec notation "{c1,c2,...}:{v1,v2,...}".
func Parse(s string) (*Vector, error) {
	parts := strings.SplitN(s, ":", 2)
	if len(parts) != 2 {
		return nil, fmt.Errorf("sparse: malformed svec %q", s)
	}
	counts, err := parseBraceList(parts[0])
	if err != nil {
		return nil, err
	}
	values, err := parseBraceList(parts[1])
	if err != nil {
		return nil, err
	}
	if len(counts) != len(values) {
		return nil, fmt.Errorf("sparse: svec %q has %d counts but %d values", s, len(counts), len(values))
	}
	v := &Vector{}
	for i := range counts {
		c := int(counts[i])
		if c <= 0 || float64(c) != counts[i] {
			return nil, fmt.Errorf("sparse: svec %q has invalid count %v", s, counts[i])
		}
		v.Append(values[i], c)
	}
	return v, nil
}

func parseBraceList(s string) ([]float64, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || s[0] != '{' || s[len(s)-1] != '}' {
		return nil, fmt.Errorf("sparse: malformed list %q", s)
	}
	body := s[1 : len(s)-1]
	if body == "" {
		return nil, nil
	}
	fields := strings.Split(body, ",")
	out := make([]float64, len(fields))
	for i, f := range fields {
		var v float64
		if _, err := fmt.Sscanf(strings.TrimSpace(f), "%g", &v); err != nil {
			return nil, fmt.Errorf("sparse: bad number %q: %v", f, err)
		}
		out[i] = v
	}
	return out, nil
}
