// Package madlib is a Go reproduction of the MADlib in-database analytics
// library ("The MADlib Analytics Library, or MAD Skills, the SQL",
// Hellerstein et al., PVLDB 5(12), 2012): a suite of SQL-driven machine
// learning, data mining and statistics methods that execute as parallel
// user-defined aggregates inside a shared-nothing database engine.
//
// As in the paper, the primary entry point is SQL. Exec and Query compile
// a practical dialect — DDL, DML, two-phase aggregates, GROUP BY, and the
// madlib.* method namespace — down to the parallel engine, reproducing
// the §4.1 psql session verbatim:
//
//	db := madlib.Open(madlib.Config{Segments: 4})
//	db.Exec(`CREATE TABLE data (y double precision, x double precision[])`)
//	db.Exec(`INSERT INTO data VALUES (1.14, {1, 0.22}), (2.87, {1, 0.61})`)
//	res, _ := db.Query(`SELECT (madlib.linregr(y, x)).* FROM data`)
//	fmt.Print(res.Format()) // coef, r2, std_err, t_stats, p_values, condition_no
//
// The same surface is available interactively via `madlib sql` (a psql
// style REPL with \d, \df and \timing), and every method also has a typed
// Go facade method for programmatic use:
//
//	data, _ := db.CreateTable("data", madlib.Schema{
//		{Name: "y", Kind: madlib.Float},
//		{Name: "x", Kind: madlib.Vector},
//	})
//	data.Insert(1.14, []float64{1, 0.22})
//	// ... more rows ...
//	res, _ := db.LinRegr("data", "y", "x")
//
// The engine itself (internal/engine) is part of the reproduction: tables
// are partitioned across N segments and every method runs as
// transition/merge/final aggregation plus, for iterative methods, a
// driver-function loop staging state through temp tables (paper §3). The
// SQL grammar is documented in internal/sql.
package madlib

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"madlib/internal/assoc"
	"madlib/internal/bayes"
	"madlib/internal/bootstrap"
	"madlib/internal/core"
	"madlib/internal/crf"
	"madlib/internal/dtree"
	"madlib/internal/engine"
	"madlib/internal/kmeans"
	"madlib/internal/lda"
	"madlib/internal/linregr"
	"madlib/internal/logregr"
	"madlib/internal/matrix"
	"madlib/internal/optim"
	"madlib/internal/profile"
	"madlib/internal/quantile"
	"madlib/internal/sketch"
	"madlib/internal/sparse"
	"madlib/internal/sql"
	"madlib/internal/svdmf"
	"madlib/internal/svm"
	"madlib/internal/text"
)

// Re-exported engine types: the schema vocabulary users need to create and
// fill tables.
type (
	// Table is a segment-partitioned relation.
	Table = engine.Table
	// Schema is an ordered column list.
	Schema = engine.Schema
	// Column is one (name, kind) schema entry.
	Column = engine.Column
	// Kind is a column type.
	Kind = engine.Kind
	// Row is a scan cursor handed to user predicates.
	Row = engine.Row
)

// Column kinds.
const (
	Float  = engine.Float
	Vector = engine.Vector
	Int    = engine.Int
	String = engine.String
	Bool   = engine.Bool
)

// Re-exported method option/result types.
type (
	// LinRegrResult is the linear-regression inference record.
	LinRegrResult = linregr.Result
	// LinRegrVersion selects a historical linregr implementation.
	LinRegrVersion = linregr.Version
	// LogRegrOptions configure logistic regression.
	LogRegrOptions = logregr.Options
	// LogRegrResult is the logistic-regression output.
	LogRegrResult = logregr.Result
	// KMeansOptions configure k-means.
	KMeansOptions = kmeans.Options
	// KMeansResult is the clustering output.
	KMeansResult = kmeans.Result
	// BayesOptions configure naive Bayes.
	BayesOptions = bayes.Options
	// BayesModel is a trained naive Bayes classifier.
	BayesModel = bayes.Model
	// TreeOptions configure C4.5.
	TreeOptions = dtree.Options
	// TreeModel is a trained decision tree.
	TreeModel = dtree.Model
	// SVMOptions configure SVM training.
	SVMOptions = svm.Options
	// SVMModel is a trained SVM.
	SVMModel = svm.Model
	// SVDMFOptions configure low-rank factorization.
	SVDMFOptions = svdmf.Options
	// SVDMFModel is a trained factorization.
	SVDMFModel = svdmf.Model
	// LDAOptions configure LDA.
	LDAOptions = lda.Options
	// LDAModel is a trained topic model.
	LDAModel = lda.Model
	// AssocOptions configure association-rule mining.
	AssocOptions = assoc.Options
	// AssocResult holds frequent itemsets and rules.
	AssocResult = assoc.Result
	// TableProfile is the data-profiling output.
	TableProfile = profile.TableProfile
	// CRFTrainOptions configure CRF training.
	CRFTrainOptions = crf.TrainOptions
	// CRFModel is a trained linear-chain CRF.
	CRFModel = crf.Model
	// CRFSentence is a labelled token sequence.
	CRFSentence = crf.Sentence
	// CRFMCMCOptions configure the CRF MCMC samplers.
	CRFMCMCOptions = crf.MCMCOptions
	// CRFToken is one labelled token.
	CRFToken = crf.Token
	// TrigramIndex is an inverted trigram index for approximate matching.
	TrigramIndex = text.Index
	// MethodInfo describes one registered method (the Table-1 inventory).
	MethodInfo = core.MethodInfo
)

// Linear-regression versions (§4.4 performance study).
const (
	V03      = linregr.V03
	V01Alpha = linregr.V01Alpha
	V021Beta = linregr.V021Beta
)

// Logistic-regression solvers.
const (
	IRLS = logregr.IRLS
	CG   = logregr.CG
	IGD  = logregr.IGD
)

// KMeansPattern selects the §4.3 macro-programming pattern.
type KMeansPattern = kmeans.Pattern

// k-means macro-programming patterns.
const (
	UDAOnly         = kmeans.UDAOnly
	AssignmentTable = kmeans.AssignmentTable
)

// KMeansSeeding selects the centroid initialization.
type KMeansSeeding = kmeans.Seeding

// k-means seeding strategies.
const (
	PlusPlus = kmeans.PlusPlus
	Random   = kmeans.Random
)

// SVMMode selects the SVM variant.
type SVMMode = svm.Mode

// SVM variants.
const (
	SVMClassification = svm.Classification
	SVMRegression     = svm.Regression
	SVMNovelty        = svm.Novelty
)

// Config configures a database instance.
type Config struct {
	// Segments is the shared-nothing parallelism degree. Zero picks a
	// core-aware default: max(4, runtime.NumCPU()), so a database opened
	// on a bigger machine gets one segment per core and the morsel
	// workers and per-segment training replicas scale with it.
	Segments int
}

// DB is the library handle: a parallel database instance plus the method
// suite and a shared SQL session (plan cache, prepared statements).
type DB struct {
	eng  *engine.DB
	sess *sql.Session
}

// Open creates a database with cfg.Segments segments (zero selects the
// core-aware default).
func Open(cfg Config) *DB {
	if cfg.Segments == 0 {
		cfg.Segments = 4
		if n := runtime.NumCPU(); n > cfg.Segments {
			cfg.Segments = n
		}
	}
	eng := engine.Open(cfg.Segments)
	return &DB{eng: eng, sess: sql.NewSession(eng)}
}

// Engine exposes the underlying engine for advanced use (instrumented
// queries, custom aggregates).
func (db *DB) Engine() *engine.DB { return db.eng }

// CreateTable registers a new table.
func (db *DB) CreateTable(name string, schema Schema) (*Table, error) {
	return db.eng.CreateTable(name, schema)
}

// Table looks up a table by name.
func (db *DB) Table(name string) (*Table, error) { return db.eng.Table(name) }

// DropTable removes a table.
func (db *DB) DropTable(name string) error { return db.eng.DropTable(name) }

// Methods returns the registered method inventory — the programmatic
// Table 1 of the paper.
func Methods() []MethodInfo { return core.Methods() }

// table resolves a table name, so facade calls read like the SQL they
// stand in for: SELECT (linregr(y, x)).* FROM data.
func (db *DB) table(name string) (*Table, error) { return db.eng.Table(name) }

// LinRegr runs ordinary-least-squares linear regression:
// SELECT (linregr(yCol, xCol)).* FROM table (§4.1).
func (db *DB) LinRegr(table, yCol, xCol string) (*LinRegrResult, error) {
	t, err := db.table(table)
	if err != nil {
		return nil, err
	}
	return linregr.Run(db.eng, t, yCol, xCol)
}

// LinRegrWithVersion runs a specific historical implementation (§4.4).
func (db *DB) LinRegrWithVersion(table, yCol, xCol string, v LinRegrVersion) (*LinRegrResult, error) {
	t, err := db.table(table)
	if err != nil {
		return nil, err
	}
	return linregr.Run(db.eng, t, yCol, xCol, linregr.WithVersion(v))
}

// LinRegrGroupBy runs one regression per group key.
func (db *DB) LinRegrGroupBy(table, yCol, xCol string, key func(Row) string) (map[string]*LinRegrResult, error) {
	t, err := db.table(table)
	if err != nil {
		return nil, err
	}
	return linregr.RunGroupBy(db.eng, t, yCol, xCol, key)
}

// LogRegr fits binary logistic regression with a driver-function loop:
// SELECT * FROM logregr('y', 'x', 'table') (§4.2).
func (db *DB) LogRegr(table, yCol, xCol string, opts LogRegrOptions) (*LogRegrResult, error) {
	t, err := db.table(table)
	if err != nil {
		return nil, err
	}
	return logregr.Run(db.eng, t, yCol, xCol, opts)
}

// LogRegrPerGroup fits one logistic regression per group key via the
// §4.2.1 join-construct pattern (logregr is a driver function, not an
// aggregate, so it cannot compose with GROUP BY the way LinRegrGroupBy
// does).
func (db *DB) LogRegrPerGroup(table, yCol, xCol string, key func(Row) string, opts LogRegrOptions) (map[string]*LogRegrResult, error) {
	t, err := db.table(table)
	if err != nil {
		return nil, err
	}
	return logregr.RunPerGroup(db.eng, t, yCol, xCol, key, opts)
}

// KMeans clusters the points of a Vector column (§4.3).
func (db *DB) KMeans(table, coordsCol string, opts KMeansOptions) (*KMeansResult, error) {
	t, err := db.table(table)
	if err != nil {
		return nil, err
	}
	return kmeans.Run(db.eng, t, coordsCol, opts)
}

// NaiveBayes trains a categorical naive Bayes classifier.
func (db *DB) NaiveBayes(table, classCol, attrsCol string, opts BayesOptions) (*BayesModel, error) {
	t, err := db.table(table)
	if err != nil {
		return nil, err
	}
	return bayes.Train(db.eng, t, classCol, attrsCol, opts)
}

// C45 trains a C4.5 decision tree.
func (db *DB) C45(table, classCol, featuresCol string, opts TreeOptions) (*TreeModel, error) {
	t, err := db.table(table)
	if err != nil {
		return nil, err
	}
	return dtree.Train(db.eng, t, classCol, featuresCol, opts)
}

// SVM trains a support vector machine (classification, regression, or
// novelty detection per opts.Mode).
func (db *DB) SVM(table, yCol, xCol string, opts SVMOptions) (*SVMModel, error) {
	t, err := db.table(table)
	if err != nil {
		return nil, err
	}
	return svm.Train(db.eng, t, yCol, xCol, opts)
}

// SVDMF factorizes a sparsely observed matrix by incremental gradient.
func (db *DB) SVDMF(table, iCol, jCol, vCol string, opts SVDMFOptions) (*SVDMFModel, error) {
	t, err := db.table(table)
	if err != nil {
		return nil, err
	}
	return svdmf.Factorize(db.eng, t, iCol, jCol, vCol, opts)
}

// LDA trains a topic model over a (doc Int, word Int) table.
func (db *DB) LDA(table, docCol, wordCol string, opts LDAOptions) (*LDAModel, error) {
	t, err := db.table(table)
	if err != nil {
		return nil, err
	}
	return lda.TrainTable(db.eng, t, docCol, wordCol, opts)
}

// AssocRules mines association rules from a (basket Int, item String)
// table.
func (db *DB) AssocRules(table, basketCol, itemCol string, opts AssocOptions) (*AssocResult, error) {
	t, err := db.table(table)
	if err != nil {
		return nil, err
	}
	return assoc.MineTable(db.eng, t, basketCol, itemCol, opts)
}

// Profile produces per-column univariate summaries of an arbitrary table
// via templated queries (§3.1.3).
func (db *DB) Profile(table string) (*TableProfile, error) {
	return profile.Run(db.eng, table)
}

// Quantile returns the exact φ-quantile of a Float column.
func (db *DB) Quantile(table, col string, phi float64) (float64, error) {
	t, err := db.table(table)
	if err != nil {
		return 0, err
	}
	ci := t.Schema().Index(col)
	if ci < 0 {
		return 0, engine.ErrNoColumn
	}
	v, err := db.eng.Run(t, quantile.ExactAggregate(ci, []float64{phi}))
	if err != nil {
		return 0, err
	}
	return v.([]float64)[0], nil
}

// ApproxQuantiles returns GK ε-approximate quantiles of a Float column.
func (db *DB) ApproxQuantiles(table, col string, eps float64, phis []float64) ([]float64, error) {
	t, err := db.table(table)
	if err != nil {
		return nil, err
	}
	ci := t.Schema().Index(col)
	if ci < 0 {
		return nil, engine.ErrNoColumn
	}
	v, err := db.eng.Run(t, quantile.GKAggregate(ci, eps, phis))
	if err != nil {
		return nil, err
	}
	return v.([]float64), nil
}

// CountMinSketch builds a Count-Min sketch over an Int column.
func (db *DB) CountMinSketch(table, col string, epsilon, delta float64) (*sketch.CountMin, error) {
	t, err := db.table(table)
	if err != nil {
		return nil, err
	}
	ci := t.Schema().Index(col)
	if ci < 0 {
		return nil, engine.ErrNoColumn
	}
	if _, err := sketch.NewCountMin(epsilon, delta); err != nil {
		return nil, err // validate before running the aggregate
	}
	v, err := db.eng.Run(t, sketch.CountMinAggregate(ci, epsilon, delta))
	if err != nil {
		return nil, err
	}
	return v.(*sketch.CountMin), nil
}

// DistinctCount estimates a column's distinct values with an FM sketch.
func (db *DB) DistinctCount(table, col string) (int64, error) {
	t, err := db.table(table)
	if err != nil {
		return 0, err
	}
	ci := t.Schema().Index(col)
	if ci < 0 {
		return 0, engine.ErrNoColumn
	}
	v, err := db.eng.Run(t, sketch.FMAggregate(ci, t.Schema()[ci].Kind))
	if err != nil {
		return 0, err
	}
	return v.(int64), nil
}

// CRFTrain fits a linear-chain CRF from an in-memory labelled corpus
// (§5.2), staging it through the engine.
func (db *DB) CRFTrain(corpus []CRFSentence, opts CRFTrainOptions) (*CRFModel, error) {
	name := fmt.Sprintf("crf_corpus_%d", crfCorpusSeq.Add(1))
	t, err := crf.LoadCorpus(db.eng, name, corpus)
	if err != nil {
		return nil, err
	}
	defer func() { _ = db.eng.DropTable(t.Name()) }()
	return crf.TrainTable(db.eng, t, "words", "tags", opts)
}

var crfCorpusSeq atomic.Int64

// NewTrigramIndex returns an empty approximate-string-matching index.
func NewTrigramIndex() *TrigramIndex { return text.NewIndex() }

// Similarity returns the trigram similarity of two strings.
func Similarity(a, b string) float64 { return text.Similarity(a, b) }

// BootstrapOptions configure bootstrap resampling.
type BootstrapOptions = bootstrap.Options

// BootstrapResult summarizes a bootstrap distribution.
type BootstrapResult = bootstrap.Result

// Bootstrap runs m-of-n bootstrap resampling of an arbitrary scalar
// aggregate over a table, using the §3.1.2 counted-iteration pattern.
func (db *DB) Bootstrap(table string, agg engine.Aggregate, opts BootstrapOptions) (*BootstrapResult, error) {
	t, err := db.table(table)
	if err != nil {
		return nil, err
	}
	return bootstrap.Run(db.eng, t, agg, opts)
}

// SparseVector is the run-length-encoded vector of the "Sparse Vectors"
// support module (§3.2).
type SparseVector = sparse.Vector

// NewSparseVector builds an RLE vector from a dense slice.
func NewSparseVector(dense []float64) *SparseVector { return sparse.FromDense(dense) }

// ParseSparseVector parses MADlib svec notation, e.g. "{3,2,1}:{0,5,0}".
func ParseSparseVector(s string) (*SparseVector, error) { return sparse.Parse(s) }

// Matrix is the dense matrix type used by final functions.
type Matrix = matrix.Matrix

// SolveConjugateGradient solves the SPD system A·x = b with the Conjugate
// Gradient support module.
func SolveConjugateGradient(a *Matrix, b []float64, tol float64, maxIter int) ([]float64, error) {
	x, _, err := optim.SolveCGMatrix(a, b, tol, maxIter)
	return x, err
}
